(* Path exploration and test emission.

   Default strategy is depth-first search to exhaustion with eager
   pruning of unsatisfiable branches, using the solver incrementally
   (scopes pushed and popped along the DFS spine), exactly as the
   paper configures Z3 (§6).  Alternative strategies enabled by the
   continuation design (§5.1.2): random branch ordering and a greedy
   coverage mode that only emits coverage-increasing tests.

   Two drivers share the same DFS engine:

   - [path_jobs = 0] (default): the classic in-place sequential DFS
     over the caller's context and solver.

   - [path_jobs >= 1]: the frontier-split driver.  An *adaptive*
     sequential splitter grows a task frontier by repeatedly
     refining the heaviest task (by remaining-work estimate) one
     fork level deeper until the frontier reaches the
     [split_tasks] target.  Each task carries the captured subtree
     root state — refinement continues from captured states, never
     re-executing a prefix — plus the branch-choice prefix that
     reaches it and the path conditions accumulated along the way.

     Workers start a task from a *snapshot*, not a replay: the
     task's state is imported into a private [Expr.clone_ctx] term
     context (tag/vid-preserving, so pre-fork hash-consed terms are
     reused rather than re-interned) and the splitter's solver is
     [Solver.clone]d — clause database, learnt clauses, phase state,
     and blaster caches included — then the task's path conditions
     are asserted as the clone's base.  A task whose estimated
     snapshot weight exceeds [snapshot_max_bytes] falls back to the
     PR-4-style prefix replay into a fresh instance (the [fresh]
     hook), which keeps the replayable-prefix story available for
     checkpointing and sharding.

     The splitter runs to completion before any worker starts, and
     every task clones from the same frozen splitter-final
     context/solver, so a task's result is a pure function of the
     task — independent of scheduling.  Results merge in splitter
     (DFS) order, so the test set, coverage, and counter totals are
     identical for [path_jobs = 1] and [path_jobs = N] (the lone
     exception is [explore.steals], which is scheduling by
     definition). *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
module Solver = Smt.Solver
open Runtime

type strategy = Dfs | Rnd | Cov

type config = {
  max_tests : int option;
  max_paths : int option;
  strategy : strategy;
  stop_at_full_coverage : bool;
  rebuild_size_threshold : int;
      (** SAT variables a solver may accumulate before it is eligible
          for a rebuild (dead variables from popped scopes dominate
          past this point) *)
  rebuild_max_spine : int;
      (** rebuild only when the DFS spine is at most this deep, so the
          fresh solver re-asserts few scopes *)
  sat_options : Smt.Sat.options;
      (** CDCL tuning (phase saving, target phases, learnt-database
          reduction, clause minimisation) for every solver of the run *)
  word_rewrite : bool;
      (** run {!Smt.Expr.simplify} on asserted terms before blasting *)
  path_jobs : int;
      (** 0 = classic sequential DFS; N >= 1 = frontier-split driver
          with N worker domains (capped by the shared domain pool and
          by the host's recommended domain count) *)
  split_tasks : int;
      (** adaptive-splitter frontier target: the splitter refines the
          heaviest task one fork level deeper until this many subtree
          tasks exist (frontier driver only; <= 1 disables splitting
          and runs the whole tree as one task) *)
  snapshot_max_bytes : int;
      (** estimated term weight above which a task is started by
          replaying its branch prefix into a fresh instance instead of
          importing a snapshot (0 forces replay for every task) *)
  query_cache : bool;
      (** consult the {!Smt.Qcache} independence-slicing cache before
          paying for a branch-feasibility solver check.  Cache
          verdicts agree with the solver, so the explored tree and
          the emitted tests are identical either way — only the cost
          changes.  Test-emission models always come from real solver
          calls on the emission solver, whose history is independent
          of this flag. *)
  qcache_slots : int;
      (** bound on each of the query cache's SAT/UNSAT digest-set
          rings *)
  qcache_store : Smt.Qcache.store option;
      (** cross-run digest-set store (the serve daemon passes the
          prepared oracle's store so cache facts survive between
          requests for the same fingerprint) *)
  on_test : (Testspec.t -> unit) option;
      (** incremental test callback: invoked once per *accepted* test,
          in final emission order, as paths close — before the run
          finishes.  Sequential driver: fired directly from the DFS.
          Frontier driver: fired as the deterministic merge prefix
          advances over completed subtree tasks, so the stream order
          equals [result.tests] for every [path_jobs] (the callback
          runs under the merge lock there: a slow consumer throttles
          the workers — that is the backpressure story).  Exceptions
          from the callback abort the run. *)
  deadline : float option;
      (** absolute {!Obs.Clock.now} time after which exploration stops
          gracefully (checked at path granularity, like the budget
          caps): tests emitted so far are kept.  A run cut by its
          deadline is time-dependent, so determinism guarantees only
          hold for runs that finish before it. *)
}

let default_config =
  {
    max_tests = None;
    max_paths = None;
    strategy = Dfs;
    stop_at_full_coverage = false;
    rebuild_size_threshold = 4000;
    rebuild_max_spine = 8;
    sat_options = Smt.Sat.default_options;
    word_rewrite = true;
    path_jobs = 0;
    split_tasks = 32;
    snapshot_max_bytes = 32_000_000;
    query_cache = true;
    qcache_slots = 512;
    qcache_store = None;
    on_test = None;
    deadline = None;
  }

(* A read-out of the run's metrics.  The source of truth is the
   [Obs] registry threaded through [Runtime.ctx]; this record is a
   façade computed from a registry snapshot so existing consumers
   (CLI summary lines, the bench tables) keep working. *)
type stats = {
  mutable paths : int;  (** completed feasible paths *)
  mutable tests : int;
  mutable infeasible : int;  (** branches pruned by the solver *)
  mutable abandoned : int;  (** paths cut by unrolling/recirc bounds *)
  mutable discarded_taint : int;  (** tests dropped for tainted ports *)
  mutable discarded_concolic : int;
  mutable t_step : float;  (** interpretation time *)
  mutable t_emit : float;  (** test-construction time (includes its solver calls) *)
  mutable t_emit_solve : float;  (** solver time spent inside test construction *)
  mutable solver_checks : int;
      (** all solver checks of the run — branch feasibility plus the
          ones issued during test construction *)
}

type result = {
  tests : Testspec.t list;
  covered : IntSet.t;
  total_stmts : int;
  stats : stats;
  solve_time : float;
  total_time : float;
  obs : Obs.Snapshot.t;
      (** the run's registry delta, including absorbed per-task and
          per-worker activity under the frontier driver *)
  workers : (string * Obs.Registry.t) list;
      (** frontier driver only: per-worker registries (spans, steal
          counts) for trace export; empty for the sequential driver *)
}

let empty_stats () =
  {
    paths = 0;
    tests = 0;
    infeasible = 0;
    abandoned = 0;
    discarded_taint = 0;
    discarded_concolic = 0;
    t_step = 0.0;
    t_emit = 0.0;
    t_emit_solve = 0.0;
    solver_checks = 0;
  }

(* the façade: project a (delta) snapshot of the run's registry onto
   the historical stats record *)
let stats_of_snapshot (d : Obs.Snapshot.t) : stats =
  let i = Obs.Snapshot.get_int d and f = Obs.Snapshot.get_float d in
  {
    paths = i "explore.paths";
    tests = i "explore.tests";
    infeasible = i "explore.infeasible";
    abandoned = i "explore.abandoned";
    discarded_taint = i "explore.discarded_taint";
    discarded_concolic = i "explore.discarded_concolic";
    t_step = f "explore.t_step";
    t_emit = f "explore.t_emit";
    t_emit_solve = f "explore.t_emit_solve";
    solver_checks = i "solver.checks";
  }

(* accumulate [s] into [acc] (kept for callers that merge stats
   records directly; the batch driver merges registry snapshots) *)
let add_stats acc (s : stats) =
  acc.paths <- acc.paths + s.paths;
  acc.tests <- acc.tests + s.tests;
  acc.infeasible <- acc.infeasible + s.infeasible;
  acc.abandoned <- acc.abandoned + s.abandoned;
  acc.discarded_taint <- acc.discarded_taint + s.discarded_taint;
  acc.discarded_concolic <- acc.discarded_concolic + s.discarded_concolic;
  acc.t_step <- acc.t_step +. s.t_step;
  acc.t_emit <- acc.t_emit +. s.t_emit;
  acc.t_emit_solve <- acc.t_emit_solve +. s.t_emit_solve;
  acc.solver_checks <- acc.solver_checks + s.solver_checks

(* ------------------------------------------------------------------ *)
(* Coverage export hook (corpus admission, ROADMAP item 3).

   Projects a finished run onto a set of *cross-program* coverage
   keys: one key per covered canonical statement shape ([shape] maps
   this program's statement ids to canonical shape hashes, see
   {!P4.Passes.statement_shapes}).  Branch coverage is subsumed:
   a shape embeds its full branch context ("/if(cond).t" vs ".e"), so
   covering a new if-arm is a new key.  Deliberately NOT per-test
   path digests: those are near-unique per generated program (every
   from-scratch program mints fresh keys forever), which would mask
   grammar saturation and make the corpus-vs-random comparison
   meaningless.  Shape keys saturate under the generator's bounded
   grammar, so sustained novelty measures reaching oracle code the
   generator alone cannot.  Derived only from [result.covered], which
   is bit-identical across [path_jobs] and cache settings, so the key
   set is too. *)

let coverage_keys ~(shape : int -> int) (r : result) : IntSet.t =
  IntSet.fold
    (fun sid acc -> IntSet.add (shape sid) acc)
    r.covered IntSet.empty

let coverage_pct r =
  if r.total_stmts = 0 then 100.0
  else 100.0 *. float_of_int (IntSet.cardinal r.covered) /. float_of_int r.total_stmts

exception Stop

(* ------------------------------------------------------------------ *)
(* Domain pool

   One process-wide token budget shared by every parallelism layer
   (batch jobs × path workers), so [--jobs 4 --path-jobs 4] spawns at
   most the pool's worth of extra domains rather than 16.  [acquire]
   never blocks: it grants what is available (possibly 0) and the
   caller runs the remainder on its own domain. *)
module Pool = struct
  (* allow oversubscription up to 8-way even on small hosts so the
     frontier driver exercises real concurrency everywhere *)
  let tokens = Atomic.make (max 7 (Domain.recommended_domain_count () - 1))

  let rec acquire n =
    if n <= 0 then 0
    else
      let avail = Atomic.get tokens in
      let take = min n avail in
      if take = 0 then 0
      else if Atomic.compare_and_set tokens avail (avail - take) then take
      else acquire n

  let release n = if n > 0 then ignore (Atomic.fetch_and_add tokens n)
end

(* ------------------------------------------------------------------ *)
(* Test construction *)

let concretize_key model (name, sk) =
  let km =
    match sk with
    | SkExact e -> Testspec.MExact (model e)
    | SkTernary (v, m) -> Testspec.MTernary (model v, model m)
    | SkLpm (v, l) -> Testspec.MLpm (model v, l)
    | SkRange (a, b) -> Testspec.MRange (model a, model b)
    | SkOptional (Some v) -> Testspec.MOptional (Some (model v))
    | SkOptional None -> Testspec.MOptional None
  in
  (name, km)

let concretize_entry model (se : sym_entry) : Testspec.entry =
  {
    e_table = se.se_table;
    e_keys = List.map (concretize_key model) se.se_keys;
    e_action = se.se_action;
    e_args = List.map (fun (n, e) -> (n, model e)) se.se_args;
    e_priority = se.se_priority;
  }

(* soft randomization of free test inputs — in-port, synthesized
   action arguments, and packet payload (the paper picks the output
   port "at random", §3).  Implemented as SAT phase suggestions, which
   cost no clauses: all-zero packets would hide data-dependent bugs
   (e.g. shifts of zero). *)
let randomize_free_inputs ctx solver st =
  if ctx.opts.randomize then begin
    let pref e =
      match e.Expr.node with
      | Expr.Var _ -> Solver.suggest solver e (Bits.random ctx.rng (Expr.width e))
      | _ -> ()
    in
    pref st.in_port;
    List.iter (fun se -> List.iter (fun (_, e) -> pref e) se.se_args) st.entries;
    List.iter pref st.chunks;
    List.iter
      (fun pd ->
        pref pd.pd_in_port;
        List.iter pref pd.pd_chunks)
      st.seq_done
  end

(* last-write-wins per (name, index): [reg_inits] arrives newest first,
   so keeping each cell's first occurrence and reversing yields the
   final value of every cell in oldest-first order — PTF output never
   emits conflicting register_write lines for the same cell *)
let dedup_reg_inits (ris : Testspec.register_init list) =
  let seen = Hashtbl.create 8 in
  let keep =
    List.filter
      (fun (r : Testspec.register_init) ->
        let k = (r.r_name, r.r_index) in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      ris
  in
  List.rev keep

let build_test ctx solver (st : state) : Testspec.t option =
  randomize_free_inputs ctx solver st;
  match Concolic.resolve solver st with
  | Concolic.Infeasible -> None
  | Concolic.Resolved model ->
      let taint_of e =
        let m = Expr.taint_mask e in
        if st.ctrl_taint then Bits.ones (Bits.width m) else m
      in
      (* one injection step per packet of the sequence: the archived
         ones plus the packet still live in [st] *)
      let inject (pd : pkt_record) =
        let data =
          List.fold_left
            (fun acc c -> Expr.concat c acc)
            (empty_bits ctx.ectx) pd.pd_chunks
        in
        let input = Testspec.packet ~port:(model pd.pd_in_port) (model data) in
        let outputs =
          if pd.pd_dropped then []
          else
            List.rev_map
              (fun o ->
                {
                  Testspec.port = model o.o_port;
                  data = model o.o_data;
                  dontcare = taint_of o.o_data;
                })
              pd.pd_outputs
        in
        Testspec.SInject { input; outputs }
      in
      let current =
        {
          pd_chunks = st.chunks;
          pd_in_port = st.in_port;
          pd_outputs = st.outputs;
          pd_dropped = st.dropped;
        }
      in
      let entries = List.rev_map (concretize_entry model) st.entries in
      let registers = dedup_reg_inits st.reg_inits in
      let covered = IntSet.elements st.covered in
      let comment = String.concat " > " (List.rev st.trace) in
      (* [current :: seq_done] is newest first; rev_map restores
         injection order *)
      (match List.rev_map inject (current :: st.seq_done) with
      | [ Testspec.SInject { input; outputs } ] ->
          Some (Testspec.make ~input ~outputs ~entries ~registers ~covered ~comment)
      | steps -> Some (Testspec.make_seq ~steps ~entries ~registers ~covered ~comment))

(* a test is flaky if any packet's fate or destination is tainted *)
let port_tainted st =
  st.ctrl_taint
  || List.exists (fun o -> Expr.tainted o.o_port) st.outputs
  || List.exists
       (fun pd -> List.exists (fun o -> Expr.tainted o.o_port) pd.pd_outputs)
       st.seq_done

(* Sequence boundary: a completed packet with injections left starts
   the next one (the target-installed hook archives the finished
   packet and re-initialises the pipeline over the persisting extern
   state).  This is an implicit step — it consumes no fork choice — so
   recorded branch prefixes replay across boundaries unchanged. *)
let seq_boundary (ctx : ctx) (st : state) : state option =
  if st.seq_left > 0 then Some (ctx.next_packet_hook ctx st) else None

(* ------------------------------------------------------------------ *)
(* DFS engine

   The engine is the state of one depth-first walk: a context, a
   solver (rebuilt when it accumulates dead variables), the spine of
   active assertions, and the accumulated tests.  The sequential
   driver runs one engine over the whole tree; the frontier driver
   runs one per task, seeded with the replayed prefix as [e_base]. *)

type cells = {
  c_paths : Obs.Counter.t;
  c_tests : Obs.Counter.t;
  c_infeasible : Obs.Counter.t;
  c_abandoned : Obs.Counter.t;
  c_disc_taint : Obs.Counter.t;
  c_disc_concolic : Obs.Counter.t;
  c_branch_checks : Obs.Counter.t;
  c_seq_paths : Obs.Counter.t;
  c_rebuilds : Obs.Counter.t;
  tm_step : Obs.Timer.t;
  tm_emit : Obs.Timer.t;
  tm_emit_solve : Obs.Timer.t;
  tm_solve : Obs.Timer.t;
}

let make_cells reg =
  {
    c_paths = Obs.Registry.counter reg "explore.paths";
    c_tests = Obs.Registry.counter reg "explore.tests";
    c_infeasible = Obs.Registry.counter reg "explore.infeasible";
    c_abandoned = Obs.Registry.counter reg "explore.abandoned";
    c_disc_taint = Obs.Registry.counter reg "explore.discarded_taint";
    c_disc_concolic = Obs.Registry.counter reg "explore.discarded_concolic";
    c_branch_checks = Obs.Registry.counter reg "explore.branch_checks";
    c_seq_paths = Obs.Registry.counter reg "explore.sequence_paths";
    c_rebuilds = Obs.Registry.counter reg "solver.rebuilds";
    tm_step = Obs.Registry.timer reg "explore.t_step";
    tm_emit = Obs.Registry.timer reg "explore.t_emit";
    tm_emit_solve = Obs.Registry.timer reg "explore.t_emit_solve";
    (* solver time lives in the registry and therefore accumulates
       across solver rebuilds (every solver of a run shares it) *)
    tm_solve = Obs.Registry.timer reg "solver.time";
  }

type engine = {
  e_ctx : ctx;
  e_cfg : config;
  e_cells : cells;
  e_solver : Solver.t ref;
      (* the *emission* solver: it carries only conditions of paths
         actually descended into (base + feasible spine conds) and
         answers every test-construction query.  Its assertion and
         check history is a pure function of the explored tree — in
         particular independent of the query cache — which is what
         keeps emitted tests bit-identical with the cache on or off. *)
  e_probe : Solver.t ref;
      (* the *probe* solver: carries the full candidate path
         (including the condition under test) and answers the branch
         feasibility checks the query cache cannot *)
  e_qc : Smt.Qcache.t option;
      (* branch-feasibility query cache; [None] = --no-query-cache *)
  e_spine : Expr.t list ref;
      (* the DFS spine's active assertions, innermost first, mirroring
         the solver's scope stack; lets us rebuild a fresh solver when
         the old one has accumulated too many dead variables *)
  e_base : Expr.t list;
      (* base-scope assertions (the replayed prefix conditions),
         re-asserted into every rebuilt solver before the spine *)
  mutable e_tests : Testspec.t list;  (* newest first *)
  mutable e_covered : IntSet.t;
  mutable e_emitted : int;
  e_paths0 : int;
  e_count_tests : bool;
      (* frontier workers defer the [explore.tests] counter to the
         merge, where the accepted count is scheduling independent *)
  e_extra_check : unit -> unit;  (* frontier: global-cut abort hook *)
}

let new_solver (ctx : ctx) (cfg : config) base =
  let s =
    Solver.create ~obs:ctx.obs ~sat_options:cfg.sat_options
      ~simplify:cfg.word_rewrite ctx.ectx
  in
  List.iter (Solver.assert_ s) base;
  s

(* [solver]/[probe], when given, must already carry [base] (the
   warm-handoff path asserts imported conditions into cloned solvers
   before building the engine); rebuilds re-assert [base] into a cold
   solver either way.  [qc], when given, is a task clone with empty
   active state — [base] is asserted into it here either way. *)
let make_engine ?(base = []) ?solver ?probe ?qc ?(count_tests = true)
    ?(extra_check = fun () -> ()) (ctx : ctx) (cfg : config) =
  let cells = make_cells ctx.obs in
  let e_qc =
    if not cfg.query_cache then None
    else begin
      let q =
        match qc with
        | Some q -> q
        | None ->
            Smt.Qcache.create ~obs:ctx.obs ~slots:cfg.qcache_slots
              ?store:cfg.qcache_store ()
      in
      List.iter (Smt.Qcache.assert_base q) base;
      Some q
    end
  in
  {
    e_ctx = ctx;
    e_cfg = cfg;
    e_cells = cells;
    e_solver =
      ref (match solver with Some s -> s | None -> new_solver ctx cfg base);
    e_probe =
      ref (match probe with Some s -> s | None -> new_solver ctx cfg base);
    e_qc;
    e_spine = ref [];
    e_base = base;
    e_tests = [];
    e_covered = IntSet.empty;
    e_emitted = 0;
    e_paths0 = Obs.Counter.value cells.c_paths;
    e_count_tests = count_tests;
    e_extra_check = extra_check;
  }

(* both solvers are eligible at the same spine depths (each one's
   scope stack mirrors the spine whenever this runs), but each
   rebuilds on its own size: the probe blasts every candidate branch
   and outgrows the emission solver *)
let maybe_rebuild eng =
  if List.length !(eng.e_spine) <= eng.e_cfg.rebuild_max_spine then begin
    let rebuild_one sref =
      if Solver.size !sref > eng.e_cfg.rebuild_size_threshold then begin
        (* retire the old solver: push its residual counter activity
           into the registry before it becomes unreachable *)
        Solver.flush_stats !sref;
        Obs.Counter.incr eng.e_cells.c_rebuilds;
        let s = new_solver eng.e_ctx eng.e_cfg eng.e_base in
        List.iter
          (fun c ->
            Solver.push s;
            Solver.assert_ s c)
          (List.rev !(eng.e_spine));
        sref := s
      end
    in
    rebuild_one eng.e_solver;
    rebuild_one eng.e_probe
  end

let check_budget eng =
  (match eng.e_cfg.max_tests with
  | Some n when eng.e_emitted >= n -> raise Stop
  | _ -> ());
  (match eng.e_cfg.max_paths with
  | Some n when Obs.Counter.value eng.e_cells.c_paths - eng.e_paths0 >= n ->
      raise Stop
  | _ -> ());
  if
    eng.e_cfg.stop_at_full_coverage
    && eng.e_ctx.nstmts > 0
    && IntSet.cardinal eng.e_covered >= eng.e_ctx.nstmts
  then raise Stop;
  (match eng.e_cfg.deadline with
  | Some d when Obs.Clock.now () > d -> raise Stop
  | _ -> ());
  eng.e_extra_check ()

let finish eng st =
  let reg = eng.e_ctx.obs in
  Obs.Counter.incr eng.e_cells.c_paths;
  if st.seq_done <> [] then Obs.Counter.incr eng.e_cells.c_seq_paths;
  Obs.Span.with_ reg
    ~args:
      [
        ( "path",
          string_of_int (Obs.Counter.value eng.e_cells.c_paths - eng.e_paths0)
        );
      ]
    "path"
    (fun () ->
      let t0 = Obs.Clock.now () in
      let solve0 = Obs.Timer.value eng.e_cells.tm_solve in
      (if port_tainted st then Obs.Counter.incr eng.e_cells.c_disc_taint
       else
         match build_test eng.e_ctx !(eng.e_solver) st with
         | None -> Obs.Counter.incr eng.e_cells.c_disc_concolic
         | Some t ->
             (* the emission model satisfies the whole path — a
                high-coverage witness for future slice queries *)
             (match eng.e_qc with
             | Some q ->
                 Smt.Qcache.note_model q (Solver.capture_model !(eng.e_solver))
             | None -> ());
             let is_new = not (IntSet.subset st.covered eng.e_covered) in
             eng.e_covered <- IntSet.union st.covered eng.e_covered;
             if eng.e_cfg.strategy <> Cov || is_new then begin
               if eng.e_count_tests then Obs.Counter.incr eng.e_cells.c_tests;
               eng.e_emitted <- eng.e_emitted + 1;
               eng.e_tests <- t :: eng.e_tests;
               (* stream accepted tests as paths close — only when this
                  engine's tests are final (the sequential driver).  A
                  frontier worker's tests pass through the deterministic
                  merge first; the merge streams them instead. *)
               if eng.e_count_tests then
                 match eng.e_cfg.on_test with Some f -> f t | None -> ()
             end);
      Obs.Timer.add eng.e_cells.tm_emit (Obs.Clock.now () -. t0);
      Obs.Timer.add eng.e_cells.tm_emit_solve
        (Obs.Timer.value eng.e_cells.tm_solve -. solve0));
  check_budget eng

(* branch ordering, tagged with each branch's original index so forks
   record replayable choices.  Rnd keys are 63-bit so key collisions
   (which would leave tie order to List.sort internals rather than the
   seed) are out of the picture even on wide branch lists. *)
let order eng branches =
  let idx = List.mapi (fun i b -> (i, b)) branches in
  match eng.e_cfg.strategy with
  | Rnd ->
      List.map snd
        (List.sort
           (fun (ka, _) (kb, _) -> Int64.compare ka kb)
           (List.map
              (fun ib -> (Random.State.int64 eng.e_ctx.rng Int64.max_int, ib))
              idx))
  | Dfs | Cov -> idx

(* the DFS proper.  [depth] counts fork choices (forks = >= 2 sibling
   branches; single conditional branches are followed implicitly and
   consume no choice), [pref] is the reversed choice list from the
   root.  With [split = Some (limit, emit)] the walk is the frontier
   splitter: it emits (prefix, at_leaf, state) instead of descending
   past [limit] fork choices, and emits completed shallow paths as
   single-path tasks instead of building their tests — so the merge
   alone decides test and path accounting. *)
let rec dfs eng ~split depth pref st =
  let t0 = Obs.Clock.now () in
  let stepped =
    try Step.step eng.e_ctx st
    with Exec_error msg ->
      (* an unsupported construct on this path: abandon the path but
         keep exploring the rest of the program *)
      Logs.warn (fun m -> m "path abandoned: %s" msg);
      Some []
  in
  Obs.Timer.add eng.e_cells.tm_step (Obs.Clock.now () -. t0);
  match stepped with
  | None -> (
      (* packet finished: cross the sequence boundary when injections
         remain, otherwise the path is complete *)
      match seq_boundary eng.e_ctx st with
      | Some st' -> dfs eng ~split depth pref st'
      | None -> (
          match split with
          | Some (_, emit) -> emit (List.rev pref) true st
          | None -> finish eng st))
  | Some [] -> Obs.Counter.incr eng.e_cells.c_abandoned
  | Some [ { br_cond = None; br_state; _ } ] -> dfs eng ~split depth pref br_state
  | Some branches ->
      let fork = List.length branches >= 2 in
      let enter i child =
        let depth', pref' =
          if fork then (depth + 1, i :: pref) else (depth, pref)
        in
        match split with
        | Some (limit, emit) when fork && depth' >= limit ->
            emit (List.rev pref') false child
        | _ -> dfs eng ~split depth' pref' child
      in
      List.iter
        (fun (i, b) ->
          match b.br_cond with
          | None -> enter i b.br_state
          | Some c when Expr.is_true c -> enter i b.br_state
          | Some c when Expr.is_false c ->
              Obs.Counter.incr eng.e_cells.c_infeasible
          | Some c ->
              (* the probe carries the full candidate path (the query
                 cache consults slices of the path *without* [c], so it
                 runs before the cache's own push) *)
              Solver.push !(eng.e_probe);
              Solver.assert_ !(eng.e_probe) c;
              eng.e_spine := c :: !(eng.e_spine);
              let feasible =
                match eng.e_qc with
                | Some q -> (
                    match Smt.Qcache.check q c with
                    | Smt.Qcache.Sat_hit -> true
                    | Smt.Qcache.Unsat_hit -> false
                    | Smt.Qcache.Unknown ->
                        Obs.Counter.incr eng.e_cells.c_branch_checks;
                        if Solver.check !(eng.e_probe) = Solver.Sat then begin
                          Smt.Qcache.note_sat q
                            (Solver.capture_model !(eng.e_probe));
                          true
                        end
                        else begin
                          Smt.Qcache.note_unsat q;
                          false
                        end)
                | None ->
                    (* model reuse without the cache: if the probe's
                       last model already satisfies the branch
                       condition it witnesses the child's feasibility
                       (every condition entered since that model was
                       produced passed this same test, so the model
                       still satisfies the whole path) *)
                    Solver.holds !(eng.e_probe) c
                    || begin
                         Obs.Counter.incr eng.e_cells.c_branch_checks;
                         Solver.check !(eng.e_probe) = Solver.Sat
                       end
              in
              (try
                 if feasible then begin
                   (* only feasible conditions reach the emission
                      solver, so its history never depends on how a
                      feasibility verdict was obtained *)
                   Solver.push !(eng.e_solver);
                   Solver.assert_ !(eng.e_solver) c;
                   (match eng.e_qc with
                   | Some q -> Smt.Qcache.push q c
                   | None -> ());
                   Fun.protect
                     ~finally:(fun () ->
                       (match eng.e_qc with
                       | Some q -> Smt.Qcache.pop q
                       | None -> ());
                       Solver.pop !(eng.e_solver))
                     (fun () -> enter i (add_cond c b.br_state))
                 end
                 else Obs.Counter.incr eng.e_cells.c_infeasible
               with e ->
                 (* keep spine and scope stack consistent on any exit
                    (Stop, frontier abort): pop both, not just the
                    solver scope *)
                 Solver.pop !(eng.e_probe);
                 eng.e_spine := List.tl !(eng.e_spine);
                 raise e);
              Solver.pop !(eng.e_probe);
              eng.e_spine := List.tl !(eng.e_spine);
              maybe_rebuild eng)
        (order eng branches)

(* ------------------------------------------------------------------ *)
(* Prefix replay

   Walks [prefix] (original branch indices at forks) from [st0],
   re-taking every implicit step; [assert_cond] receives each path
   condition along the way (the frontier worker asserts them at the
   solver's base scope).  Stops after the last recorded choice: the
   chain below it is the task's subtree. *)

let prefix_to_string p = String.concat "." (List.map string_of_int p)

let replay ctx cells c_rsteps ~assert_cond prefix st0 =
  let nchoices = List.length prefix in
  let diverged remaining =
    fail
      "prefix replay diverged from the recorded path at choice depth %d \
       (prefix %s)"
      (nchoices - List.length remaining)
      (prefix_to_string prefix)
  in
  let follow pref b =
    match b.br_cond with
    | None -> (pref, b.br_state)
    | Some c when Expr.is_true c -> (pref, b.br_state)
    | Some c ->
        assert_cond c;
        (pref, add_cond c b.br_state)
  in
  let rec walk pref st =
    match pref with
    | [] -> st
    | i :: rest -> (
        let t0 = Obs.Clock.now () in
        let stepped = Step.step ctx st in
        Obs.Timer.add cells.tm_step (Obs.Clock.now () -. t0);
        Obs.Counter.incr c_rsteps;
        match stepped with
        | None -> (
            (* boundaries are implicit during replay too *)
            match seq_boundary ctx st with
            | Some st' -> walk pref st'
            | None -> diverged pref)
        | Some [] -> diverged pref
        | Some [ { br_cond = None; br_state; _ } ] -> walk pref br_state
        | Some [ b ] ->
            (* single conditional branch: implicit, not a recorded
               choice (feasibility was proven by the splitter) *)
            let pref, st = follow pref b in
            walk pref st
        | Some branches ->
            let b = try List.nth branches i with _ -> diverged pref in
            let _, st = follow rest b in
            walk rest st)
  in
  walk prefix st0

(* ------------------------------------------------------------------ *)
(* Sequential driver (path_jobs = 0) *)

let run_seq (config : config) (ctx : ctx) (st0 : state) : result =
  let reg = ctx.obs in
  (* the run reports deltas against this baseline, so a registry that
     already carries earlier runs (same prepared context) stays sound *)
  let snap0 = Obs.Registry.snapshot reg in
  let t_start = Obs.Clock.now () in
  let tm_total = Obs.Registry.timer reg "explore.total_time" in
  let eng = make_engine ctx config in
  let sp_explore = Obs.Span.enter reg "explore" in
  (try dfs eng ~split:None 0 [] st0 with Stop -> ());
  Solver.flush_stats !(eng.e_solver);
  Solver.flush_stats !(eng.e_probe);
  (match eng.e_qc with Some q -> Smt.Qcache.publish q | None -> ());
  let n_seq =
    List.fold_left
      (fun k t -> if Testspec.is_sequence t then k + 1 else k)
      0 eng.e_tests
  in
  if n_seq > 0 then
    Obs.Counter.add (Obs.Registry.counter reg "explore.sequence_tests") n_seq;
  Obs.Span.exit reg sp_explore;
  let total = Obs.Clock.now () -. t_start in
  Obs.Timer.add tm_total total;
  let d = Obs.Snapshot.diff (Obs.Registry.snapshot reg) snap0 in
  {
    tests = List.rev eng.e_tests;
    covered = eng.e_covered;
    total_stmts = ctx.nstmts;
    stats = stats_of_snapshot d;
    solve_time = Obs.Snapshot.get_float d "solver.time";
    total_time = total;
    obs = d;
    workers = [];
  }

(* ------------------------------------------------------------------ *)
(* Frontier driver (path_jobs >= 1) *)

exception Abort
(* raised inside a worker task when the global cut has passed it *)

type task_result = {
  tr_tests : Testspec.t list;  (* in subtree DFS order *)
  tr_paths : int;
  tr_snap : Obs.Snapshot.t;  (* the task's whole private registry *)
}

type slot = Pending | Done of task_result | Dropped

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* path conditions a state accumulated since a root that carried [n0]
   conditions, oldest first — the base a task's solver must assert *)
let conds_since n0 st =
  List.rev (take (List.length st.path_cond - n0) st.path_cond)

(* replays the sequential emission filter over a task's tests: in Cov
   mode a test survives only if it adds coverage over everything
   accepted before it (the worker's local filter can only have dropped
   tests subsumed by earlier tests of the same task, so re-filtering
   against the global union is exact).  Returns the kept tests and the
   updated coverage union — which includes every buildable path's
   coverage, kept or not, matching the sequential driver. *)
let accept_tests strategy cov tests =
  let cov = ref cov in
  let keep t =
    let tc = IntSet.of_list t.Testspec.covered in
    let is_new = not (IntSet.subset tc !cov) in
    cov := IntSet.union tc !cov;
    strategy <> Cov || is_new
  in
  let kept = List.filter keep tests in
  (kept, !cov)

(* one step of the deterministic merge: the tests task [r] contributes
   given the totals accumulated so far.  Shared verbatim by the
   early-abort prefix scan and the final merge so the cut point cannot
   diverge between them. *)
let merge_accept config ~cov ~ntests (r : task_result) =
  let kept, cov = accept_tests config.strategy cov r.tr_tests in
  let kept =
    match config.max_tests with
    | Some m -> take (m - ntests) kept
    | None -> kept
  in
  (kept, cov)

let budget_reached config ~nstmts ~ntests ~npaths ~cov =
  (match config.max_tests with Some m -> ntests >= m | None -> false)
  || (match config.max_paths with Some m -> npaths >= m | None -> false)
  || config.stop_at_full_coverage
     && nstmts > 0
     && IntSet.cardinal cov >= nstmts

(* ------------------------------------------------------------------ *)
(* Adaptive splitter

   Grows the task frontier by refinement: start from the whole tree as
   one task, then repeatedly take the heaviest non-completed task and
   run the DFS engine from its captured root to the next fork,
   replacing it in place (preserving DFS merge order) with the fork's
   feasible children.  Refinement continues from captured states — a
   prefix is never re-executed — and stops when the frontier reaches
   the target width, every task is a completed path, or the refinement
   depth bound is hit.  The target is a pure function of the config,
   never of [path_jobs] or the host, so the split — and with it every
   downstream count — is identical for every worker count. *)

type stask = {
  sk_prefix : int list;  (** branch choices from [st0], oldest first *)
  sk_state : state;  (** captured subtree root (splitter's term ctx) *)
  sk_leaf : bool;  (** a completed path: nothing to explore below *)
  sk_cost : int;  (** remaining-work estimate (continuation depth) *)
  sk_bytes : int;  (** estimated snapshot weight, for the replay gate *)
}

(* prefixes longer than this stop being refined: deeper tasks are
   cheap enough that further splitting only adds per-task overhead *)
let max_refine_depth = 12

let split_frontier (config : config) (ctx : ctx) (st0 : state) :
    engine * stask list =
  let seng = make_engine ctx config in
  let mk_task prefix leaf st =
    {
      sk_prefix = prefix;
      sk_state = st;
      sk_leaf = leaf;
      sk_cost = List.length st.work;
      sk_bytes = state_term_bytes st;
    }
  in
  let n0 = List.length st0.path_cond in
  (* run the engine from [t]'s captured root to the next fork; the
     task's accumulated conditions ride on the solver as temporary
     scopes so the fork's feasibility checks see the full path
     constraint (a rebuild inside the walk re-asserts them from the
     spine) *)
  let refine t =
    let pushed = ref 0 in
    List.iter
      (fun c ->
        Solver.push !(seng.e_solver);
        Solver.assert_ !(seng.e_solver) c;
        Solver.push !(seng.e_probe);
        Solver.assert_ !(seng.e_probe) c;
        (match seng.e_qc with Some q -> Smt.Qcache.push q c | None -> ());
        seng.e_spine := c :: !(seng.e_spine);
        incr pushed)
      (conds_since n0 t.sk_state);
    let children = ref [] in
    Fun.protect
      ~finally:(fun () ->
        for _ = 1 to !pushed do
          Solver.pop !(seng.e_solver);
          Solver.pop !(seng.e_probe);
          (match seng.e_qc with Some q -> Smt.Qcache.pop q | None -> ());
          seng.e_spine := List.tl !(seng.e_spine)
        done)
      (fun () ->
        try
          dfs seng
            ~split:
              (Some
                 ( 1,
                   fun rel leaf st ->
                     children :=
                       mk_task (t.sk_prefix @ rel) leaf st :: !children ))
            0 [] t.sk_state
        with Stop -> ());
    List.rev !children
  in
  let target = max 1 config.split_tasks in
  let tasks = ref [ mk_task [] false st0 ] in
  let refinable t =
    (not t.sk_leaf) && List.length t.sk_prefix < max_refine_depth
  in
  (* first max wins, so ties resolve by frontier (DFS) order *)
  let heaviest () =
    List.fold_left
      (fun best t ->
        if not (refinable t) then best
        else
          match best with
          | Some b when b.sk_cost >= t.sk_cost -> best
          | _ -> Some t)
      None !tasks
  in
  (* every refinement lengthens the refined task's prefix or marks it
     a leaf, so the loop terminates even without the round bound *)
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && List.length !tasks < target && !rounds < 4 * target do
    incr rounds;
    match heaviest () with
    | None -> continue_ := false
    | Some t ->
        let children = refine t in
        tasks :=
          List.concat_map (fun x -> if x == t then children else [ x ]) !tasks
  done;
  (seng, !tasks)

let run_frontier ~fresh (config : config) (ctx : ctx) (st0 : state) : result =
  let reg = ctx.obs in
  let snap0 = Obs.Registry.snapshot reg in
  let t_start = Obs.Clock.now () in
  let tm_total = Obs.Registry.timer reg "explore.total_time" in
  let c_subtrees = Obs.Registry.counter reg "explore.subtrees" in
  let sp_explore = Obs.Span.enter reg "explore" in

  (* phase 1 — adaptive split on the caller's context/solver, pruning
     infeasible branches as it goes; every task roots a feasible
     subtree (or carries a single completed shallow path).  The
     splitter emits no tests, so the merge alone controls test/path
     accounting.  After this point the splitter's context and solver
     are frozen: they are the shared clone parent for every task. *)
  let seng, task_list =
    Obs.Span.with_ reg "split" (fun () -> split_frontier config ctx st0)
  in
  Solver.flush_stats !(seng.e_solver);
  Solver.flush_stats !(seng.e_probe);
  let parent_solver = !(seng.e_solver) in
  let parent_probe = !(seng.e_probe) in
  let parent_qc = seng.e_qc in
  let n0 = List.length st0.path_cond in
  let tasks = Array.of_list task_list in
  let n = Array.length tasks in
  Obs.Counter.add c_subtrees n;

  (* shared scheduling state.  [slots] is written once per index by
     whichever worker runs the task; publication to the merge is
     ordered by [mu] (prefix scan) and [Domain.join].  [cut_at] is the
     first task index the merge will reject; it only ever decreases
     from [max_int] once, so a task observed past the cut stays past
     it. *)
  let slots = Array.make n Pending in
  let cut_at = Atomic.make max_int in
  (* (index, merged tests) of the contiguous Done prefix: lets the
     worker running task [index] compute its exact remaining test
     budget (single writer under [mu]; the boxed pair swaps
     atomically, readers see a consistent — possibly stale — value) *)
  let prefix_acc = Atomic.make (0, 0) in
  let mu = Mutex.create () in
  let pcomplete = ref 0 in
  let acc_tests = ref 0 and acc_paths = ref 0 and acc_cov = ref IntSet.empty in
  (* tasks whose kept tests were already delivered to [on_test] by the
     prefix scan; the final merge re-derives the same kept lists (same
     accounting, same order) and only streams tasks past this mark *)
  let streamed = ref 0 in
  (* prefix scan under [mu]: advance over completed slots in splitter
     order, mirroring the merge's accounting exactly; when the budget
     fills, publish the cut so in-flight workers abort early.  With an
     [on_test] callback installed this is also where tests stream: the
     contiguous Done prefix is final — scheduling can only extend it,
     never change it.  Otherwise it is pure optimisation — the final
     merge recomputes from the slots. *)
  let advance () =
    let continue_ = ref true in
    while !continue_ && !pcomplete < n && Atomic.get cut_at > !pcomplete do
      match slots.(!pcomplete) with
      | Pending -> continue_ := false
      | Dropped ->
          (* only tasks at or past a published cut are dropped, and the
             scan stops at the cut, so this is unreachable; skipping is
             the harmless choice *)
          incr pcomplete
      | Done r ->
          if
            budget_reached config ~nstmts:ctx.nstmts ~ntests:!acc_tests
              ~npaths:!acc_paths ~cov:!acc_cov
          then begin
            Atomic.set cut_at !pcomplete;
            continue_ := false
          end
          else begin
            let kept, cov =
              merge_accept config ~cov:!acc_cov ~ntests:!acc_tests r
            in
            (match config.on_test with
            | Some f ->
                List.iter f kept;
                streamed := !pcomplete + 1
            | None -> ());
            acc_tests := !acc_tests + List.length kept;
            acc_paths := !acc_paths + r.tr_paths;
            acc_cov := cov;
            incr pcomplete
          end
    done;
    Atomic.set prefix_acc (!pcomplete, !acc_tests)
  in

  (* phase 2 — workers.  Task indices are dealt round-robin into one
     queue per worker; each queue drains through an atomic cursor, so
     owners pop their own queue and idle workers steal from the
     others' (fetch_and_add hands out each index exactly once). *)
  (* workers beyond the host's real parallelism only add domain
     overhead (minor-GC synchronisation across oversubscribed domains
     dwarfs the per-task work), so the request is capped by the host;
     the split and merge are worker-count independent, so this cannot
     change the output *)
  let host_cap = max 1 (Domain.recommended_domain_count ()) in
  let req_workers =
    if n = 0 then 1 else max 1 (min config.path_jobs (min host_cap n))
  in
  let extra = Pool.acquire (req_workers - 1) in
  let nw = extra + 1 in
  let queues =
    Array.init nw (fun w ->
        let l = ref [] in
        for i = n - 1 downto 0 do
          if i mod nw = w then l := i :: !l
        done;
        Array.of_list !l)
  in
  let cursors = Array.init nw (fun _ -> Atomic.make 0) in
  let take_task w =
    let from q =
      let i = Atomic.fetch_and_add cursors.(q) 1 in
      if i < Array.length queues.(q) then Some queues.(q).(i) else None
    in
    let rec scan k =
      if k >= nw then None
      else
        let q = (w + k) mod nw in
        match from q with Some i -> Some (i, q <> w) | None -> scan (k + 1)
    in
    scan 0
  in
  let wregs = Array.init nw (fun _ -> Obs.Registry.create ()) in
  let run_task wreg i =
    (if i >= Atomic.get cut_at then slots.(i) <- Dropped
     else
       let task = tasks.(i) in
       (* one private registry per task: a dropped task's metrics
          vanish with it, keeping merged totals scheduling
          independent *)
       let treg = Obs.Registry.create ~record_spans:false () in
       match
         Obs.Span.with_ wreg
           ~args:
             [
               ("task", string_of_int i);
               ("prefix", prefix_to_string task.sk_prefix);
             ]
           "subtree"
           (fun () ->
             (* start the task from a snapshot when its term weight
                allows, from a prefix replay into a fresh instance
                otherwise.  The choice is a pure function of the task,
                so it cannot differ across worker counts. *)
             let tctx, base, st =
               if task.sk_bytes <= config.snapshot_max_bytes then begin
                 Obs.Counter.incr
                   (Obs.Registry.counter treg "explore.snapshot_restores");
                 Obs.Gauge.set_max
                   (Obs.Registry.gauge treg "explore.snapshot_bytes")
                   task.sk_bytes;
                 let tm_restore =
                   Obs.Registry.timer treg "explore.t_snapshot_restore"
                 in
                 let t0 = Obs.Clock.now () in
                 Obs.Span.with_ wreg "snapshot_restore" (fun () ->
                     (* import the captured root into a private clone of
                        the splitter's term context, then warm-clone the
                        splitter's solver: imported terms keep their
                        tags, so the cloned blaster's caches — and the
                        cloned CDCL core's learnt clauses — apply
                        as-is *)
                     let ectx = Expr.clone_ctx ctx.ectx in
                     let imp = Expr.importer ectx in
                     let tctx =
                       clone_ctx_for_task ctx ~ectx ~obs:treg
                         ~rng:(Random.State.make [| ctx.opts.seed |])
                     in
                     let st = map_terms imp task.sk_state in
                     let base = List.map imp (conds_since n0 task.sk_state) in
                     let solver = Solver.clone ~obs:treg ~ectx parent_solver in
                     List.iter (Solver.assert_ solver) base;
                     let probe = Solver.clone ~obs:treg ~ectx parent_probe in
                     List.iter (Solver.assert_ probe) base;
                     Obs.Timer.add tm_restore (Obs.Clock.now () -. t0);
                     (tctx, `Warm (solver, probe, base), st))
               end
               else begin
                 Obs.Counter.incr
                   (Obs.Registry.counter treg "explore.replay_fallbacks");
                 let tm_replay = Obs.Registry.timer treg "explore.t_replay" in
                 let tcells = make_cells treg in
                 let c_rsteps =
                   Obs.Registry.counter treg "explore.replay_steps"
                 in
                 let t0 = Obs.Clock.now () in
                 Obs.Span.with_ wreg "replay" (fun () ->
                     let tctx, tst0 = fresh treg in
                     let acc = ref [] in
                     let st =
                       replay tctx tcells c_rsteps
                         ~assert_cond:(fun c -> acc := c :: !acc)
                         task.sk_prefix tst0
                     in
                     Obs.Timer.add tm_replay (Obs.Clock.now () -. t0);
                     (tctx, `Cold (List.rev !acc), st))
               end
             in
             (* the abort hook closes over the engine to read its
                emission count, so tie the knot through a cell *)
             let eng_cell = ref None in
             let extra_check () =
               if i >= Atomic.get cut_at then raise Abort;
               (* tight self-cap: once the merge prefix has reached
                  this task, the remaining test budget is exact and
                  scheduling independent.  In Dfs/Rnd the merge keeps
                  emitted tests in order, so anything past the bound
                  would be truncated anyway — stop instead of
                  exploring it (the big win for path_jobs=1, where
                  the prefix always tracks the running task).  Under
                  Cov the global filter can drop earlier tests and
                  need more from this task, so only the per-task
                  [max_tests] cap in [check_budget] applies there. *)
               match (!eng_cell, config.max_tests) with
               | Some e, Some m when config.strategy <> Cov ->
                   let p, at = Atomic.get prefix_acc in
                   if p = i && e.e_emitted >= m - at then raise Stop
               | _ -> ()
             in
             (* per-task query cache, cloned from the splitter's: every
                task of a run sees the same seed facts no matter which
                worker runs it, and the clone shares no mutable state,
                so verdicts stay a pure function of the task *)
             let qc =
               match parent_qc with
               | Some q -> Some (Smt.Qcache.clone ~obs:treg q)
               | None -> None
             in
             let eng =
               match base with
               | `Warm (solver, probe, base) ->
                   make_engine ~base ~solver ~probe ?qc ~count_tests:false
                     ~extra_check tctx config
               | `Cold base ->
                   make_engine ~base ?qc ~count_tests:false ~extra_check tctx
                     config
             in
             eng_cell := Some eng;
             (* seed the model cache: the splitter proved the prefix
                feasible, so this check cannot return Unsat, and it
                gives the probe a model that satisfies the base — a
                warm clone's inherited model need not *)
             (match base with
             | `Warm (_, _, []) | `Cold [] -> ()
             | _ ->
                 ignore (Solver.check !(eng.e_probe));
                 (match eng.e_qc with
                 | Some q ->
                     Smt.Qcache.note_model q (Solver.capture_model !(eng.e_probe))
                 | None -> ()));
             (try dfs eng ~split:None 0 [] st with Stop -> ());
             Solver.flush_stats !(eng.e_solver);
             Solver.flush_stats !(eng.e_probe);
             (match eng.e_qc with Some q -> Smt.Qcache.publish q | None -> ());
             {
               tr_tests = List.rev eng.e_tests;
               tr_paths =
                 Obs.Snapshot.get_int (Obs.Registry.snapshot treg)
                   "explore.paths";
               tr_snap = Obs.Registry.snapshot treg;
             })
       with
       | r -> slots.(i) <- Done r
       | exception Abort -> slots.(i) <- Dropped
       | exception e ->
           (* a task that dies here dies identically for every
              path_jobs value (nothing scheduling dependent reaches
              it), so dropping keeps determinism; still loud because
              it should not happen *)
           Logs.err (fun m ->
               m "subtree task %d (prefix %s) failed: %s" i
                 (prefix_to_string tasks.(i).sk_prefix)
                 (Printexc.to_string e));
           slots.(i) <- Dropped);
    Mutex.lock mu;
    advance ();
    Mutex.unlock mu
  in
  let worker w () =
    let wreg = wregs.(w) in
    let c_steals = Obs.Registry.counter wreg "explore.steals" in
    Obs.Span.with_ wreg "worker" (fun () ->
        let rec loop () =
          match take_task w with
          | None -> ()
          | Some (i, stolen) ->
              if stolen then Obs.Counter.incr c_steals;
              run_task wreg i;
              loop ()
        in
        loop ())
  in
  let domains = List.init extra (fun k -> Domain.spawn (fun () -> worker (k + 1) ())) in
  worker 0 ();
  List.iter Domain.join domains;
  Pool.release extra;
  (match parent_qc with Some q -> Smt.Qcache.publish q | None -> ());

  (* phase 3 — deterministic merge: walk tasks in splitter order,
     re-running the exact accounting of [advance] while collecting
     tests and absorbing accepted task registries into the run's.
     Tests are counted here (workers deferred the counter), so
     [explore.tests] equals the emitted test count for every
     path_jobs. *)
  let merged_tests = ref [] in
  let merged_cov = ref IntSet.empty in
  let ntests = ref 0 and npaths = ref 0 in
  let midx = ref 0 in
  (try
     Array.iter
       (fun slot ->
         match slot with
         | Done r ->
             if
               budget_reached config ~nstmts:ctx.nstmts ~ntests:!ntests
                 ~npaths:!npaths ~cov:!merged_cov
             then raise Exit;
             let kept, cov =
               merge_accept config ~cov:!merged_cov ~ntests:!ntests r
             in
             (* stream tasks the prefix scan did not reach; its kept
                lists for the ones it did are identical to [kept] here
                (same accounting, same order), so together the stream
                is exactly [result.tests] *)
             (match config.on_test with
             | Some f when !midx >= !streamed -> List.iter f kept
             | _ -> ());
             incr midx;
             (* the *boundary* task — the one on which [max_tests]
                fills — is explored to a scheduling-dependent extent
                (a worker stops at the exact remaining budget only
                when the merge prefix has caught up to it), so its
                exploration counters stay out of the merged registry;
                every other absorbed task is always fully explored.
                The test set is unaffected: the merge keeps exactly
                the budgeted prefix either way. *)
             let boundary =
               match config.max_tests with
               | Some m -> !ntests + List.length kept >= m
               | None -> false
             in
             if not boundary then begin
               Obs.Registry.absorb reg r.tr_snap;
               npaths := !npaths + r.tr_paths
             end;
             Obs.Counter.add seng.e_cells.c_tests (List.length kept);
             merged_tests := List.rev_append kept !merged_tests;
             merged_cov := cov;
             ntests := !ntests + List.length kept
         | Pending | Dropped ->
             (* every slot before the cut is Done; reaching a dropped
                slot means the cut is here *)
             raise Exit)
       slots
   with Exit -> ());
  (* worker registries carry only scheduling-local activity (steal
     counts, spans); absorb the counters and expose the registries as
     trace tracks *)
  let n_seq =
    List.fold_left
      (fun k t -> if Testspec.is_sequence t then k + 1 else k)
      0 !merged_tests
  in
  if n_seq > 0 then
    Obs.Counter.add
      (Obs.Registry.counter reg "explore.sequence_tests")
      n_seq;
  Array.iter (fun w -> Obs.Registry.absorb reg (Obs.Registry.snapshot w)) wregs;
  let workers =
    Array.to_list (Array.mapi (fun w r -> (Printf.sprintf "path-worker-%d" w, r)) wregs)
  in
  Obs.Span.exit reg sp_explore;
  let total = Obs.Clock.now () -. t_start in
  Obs.Timer.add tm_total total;
  let d = Obs.Snapshot.diff (Obs.Registry.snapshot reg) snap0 in
  {
    tests = List.rev !merged_tests;
    covered = !merged_cov;
    total_stmts = ctx.nstmts;
    stats = stats_of_snapshot d;
    solve_time = Obs.Snapshot.get_float d "solver.time";
    total_time = total;
    obs = d;
    workers;
  }

(* ------------------------------------------------------------------ *)
(* Driver dispatch *)

let run ?(config = default_config) ?fresh (ctx : ctx) (st0 : state) : result =
  match fresh with
  | Some fresh when config.path_jobs >= 1 -> run_frontier ~fresh config ctx st0
  | _ ->
      if config.path_jobs >= 1 then
        Logs.warn (fun m ->
            m
              "path_jobs=%d ignored: caller provided no fresh-instance hook; \
               falling back to the sequential driver"
              config.path_jobs);
      run_seq config ctx st0

(* ------------------------------------------------------------------ *)
(* Test hooks: white-box access to the splitter and the replay, so the
   suite can check that a replayed prefix reaches the frontier state
   the splitter saw. *)

(* a structural digest of an execution state, strong enough to
   distinguish different program points and path conditions *)
let fingerprint (st : state) =
  Printf.sprintf
    "trace=[%s] cov=[%s] pc=%d work=%d outs=%d entries=%d dropped=%b phase=%s"
    (String.concat ">" (List.rev st.trace))
    (String.concat "," (List.map string_of_int (IntSet.elements st.covered)))
    (List.length st.path_cond) (List.length st.work) (List.length st.outputs)
    (List.length st.entries) st.dropped st.phase

(* the frontier the adaptive splitter would hand to workers: every
   task's prefix, paired with the subtree root's fingerprint (None for
   completed shallow paths, whose task state is the leaf, not the
   replay target) *)
let frontier ?(config = default_config) (ctx : ctx) (st0 : state) :
    (int list * string option) list =
  let eng, tasks = split_frontier config ctx st0 in
  Solver.flush_stats !(eng.e_solver);
  Solver.flush_stats !(eng.e_probe);
  List.map
    (fun t ->
      (t.sk_prefix, if t.sk_leaf then None else Some (fingerprint t.sk_state)))
    tasks

(* solver-free prefix replay (path conditions are recorded in the
   state but not asserted anywhere) *)
let replay_prefix (ctx : ctx) (st0 : state) (prefix : int list) : state =
  let cells = make_cells ctx.obs in
  let c_rsteps = Obs.Registry.counter ctx.obs "explore.replay_steps" in
  replay ctx cells c_rsteps ~assert_cond:(fun _ -> ()) prefix st0
