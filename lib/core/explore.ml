(* Path exploration and test emission.

   Default strategy is depth-first search to exhaustion with eager
   pruning of unsatisfiable branches, using the solver incrementally
   (scopes pushed and popped along the DFS spine), exactly as the
   paper configures Z3 (§6).  Alternative strategies enabled by the
   continuation design (§5.1.2): random branch ordering and a greedy
   coverage mode that only emits coverage-increasing tests. *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
module Solver = Smt.Solver
open Runtime

type strategy = Dfs | Rnd | Cov

type config = {
  max_tests : int option;
  max_paths : int option;
  strategy : strategy;
  stop_at_full_coverage : bool;
}

let default_config =
  { max_tests = None; max_paths = None; strategy = Dfs; stop_at_full_coverage = false }

type stats = {
  mutable paths : int;  (** completed feasible paths *)
  mutable tests : int;
  mutable infeasible : int;  (** branches pruned by the solver *)
  mutable abandoned : int;  (** paths cut by unrolling/recirc bounds *)
  mutable discarded_taint : int;  (** tests dropped for tainted ports *)
  mutable discarded_concolic : int;
  mutable t_step : float;  (** interpretation time *)
  mutable t_emit : float;  (** test-construction time (includes its solver calls) *)
  mutable t_emit_solve : float;  (** solver time spent inside test construction *)
  mutable solver_checks : int;
}

type result = {
  tests : Testspec.t list;
  covered : IntSet.t;
  total_stmts : int;
  stats : stats;
  solve_time : float;
  total_time : float;
}

let empty_stats () =
  {
    paths = 0;
    tests = 0;
    infeasible = 0;
    abandoned = 0;
    discarded_taint = 0;
    discarded_concolic = 0;
    t_step = 0.0;
    t_emit = 0.0;
    t_emit_solve = 0.0;
    solver_checks = 0;
  }

(* accumulate [s] into [acc] (used by the batch driver to merge
   per-run statistics) *)
let add_stats acc (s : stats) =
  acc.paths <- acc.paths + s.paths;
  acc.tests <- acc.tests + s.tests;
  acc.infeasible <- acc.infeasible + s.infeasible;
  acc.abandoned <- acc.abandoned + s.abandoned;
  acc.discarded_taint <- acc.discarded_taint + s.discarded_taint;
  acc.discarded_concolic <- acc.discarded_concolic + s.discarded_concolic;
  acc.t_step <- acc.t_step +. s.t_step;
  acc.t_emit <- acc.t_emit +. s.t_emit;
  acc.t_emit_solve <- acc.t_emit_solve +. s.t_emit_solve;
  acc.solver_checks <- acc.solver_checks + s.solver_checks

let coverage_pct r =
  if r.total_stmts = 0 then 100.0
  else 100.0 *. float_of_int (IntSet.cardinal r.covered) /. float_of_int r.total_stmts

exception Stop

(* ------------------------------------------------------------------ *)
(* Test construction *)

let concretize_key model (name, sk) =
  let km =
    match sk with
    | SkExact e -> Testspec.MExact (model e)
    | SkTernary (v, m) -> Testspec.MTernary (model v, model m)
    | SkLpm (v, l) -> Testspec.MLpm (model v, l)
    | SkRange (a, b) -> Testspec.MRange (model a, model b)
    | SkOptional (Some v) -> Testspec.MOptional (Some (model v))
    | SkOptional None -> Testspec.MOptional None
  in
  (name, km)

let concretize_entry model (se : sym_entry) : Testspec.entry =
  {
    e_table = se.se_table;
    e_keys = List.map (concretize_key model) se.se_keys;
    e_action = se.se_action;
    e_args = List.map (fun (n, e) -> (n, model e)) se.se_args;
    e_priority = se.se_priority;
  }

(* soft randomization of free test inputs — in-port, synthesized
   action arguments, and packet payload (the paper picks the output
   port "at random", §3).  Implemented as SAT phase suggestions, which
   cost no clauses: all-zero packets would hide data-dependent bugs
   (e.g. shifts of zero). *)
let randomize_free_inputs ctx solver st =
  if ctx.opts.randomize then begin
    let pref e =
      match e.Expr.node with
      | Expr.Var _ -> Solver.suggest solver e (Bits.random ctx.rng (Expr.width e))
      | _ -> ()
    in
    pref st.in_port;
    List.iter (fun se -> List.iter (fun (_, e) -> pref e) se.se_args) st.entries;
    List.iter pref st.chunks
  end

let build_test ctx solver (st : state) : Testspec.t option =
  randomize_free_inputs ctx solver st;
  match Concolic.resolve solver st with
  | Concolic.Infeasible -> None
  | Concolic.Resolved model ->
      let taint_of e =
        let m = Expr.taint_mask e in
        if st.ctrl_taint then Bits.ones (Bits.width m) else m
      in
      let input =
        Testspec.packet ~port:(model st.in_port) (model (input_expr st))
      in
      let outputs =
        if st.dropped then []
        else
          List.rev_map
            (fun o ->
              {
                Testspec.port = model o.o_port;
                data = model o.o_data;
                dontcare = taint_of o.o_data;
              })
            st.outputs
      in
      let entries = List.rev_map (concretize_entry model) st.entries in
      Some
        (Testspec.make ~input ~outputs ~entries ~registers:(List.rev st.reg_inits)
           ~covered:(IntSet.elements st.covered)
           ~comment:(String.concat " > " (List.rev st.trace)))

(* a test is flaky if the packet's fate or destination is tainted *)
let port_tainted st =
  st.ctrl_taint || List.exists (fun o -> Expr.tainted o.o_port) st.outputs

(* ------------------------------------------------------------------ *)
(* DFS driver *)

let run ?(config = default_config) (ctx : ctx) (st0 : state) : result =
  let t_start = Unix.gettimeofday () in
  let solver = ref (Solver.create ctx.ectx) in
  (* the DFS spine's active assertions, innermost first, mirroring the
     solver's scope stack; lets us rebuild a fresh solver when the old
     one has accumulated too many dead variables from popped scopes *)
  let spine : Expr.t list ref = ref [] in
  let maybe_rebuild () =
    if Solver.size !solver > 300_000 && List.length !spine <= 4 then begin
      let s = Solver.create ctx.ectx in
      List.iter
        (fun c ->
          Solver.push s;
          Solver.assert_ s c)
        (List.rev !spine);
      solver := s
    end
  in
  let stats = empty_stats () in
  let tests = ref [] in
  let covered = ref IntSet.empty in
  let check_budget () =
    (match config.max_tests with Some n when stats.tests >= n -> raise Stop | _ -> ());
    (match config.max_paths with Some n when stats.paths >= n -> raise Stop | _ -> ());
    if
      config.stop_at_full_coverage && ctx.nstmts > 0
      && IntSet.cardinal !covered >= ctx.nstmts
    then raise Stop
  in
  let finish st =
    stats.paths <- stats.paths + 1;
    let t0 = Unix.gettimeofday () in
    let solve0 = Solver.solve_time !solver in
    (if port_tainted st then stats.discarded_taint <- stats.discarded_taint + 1
     else
       match build_test ctx !solver st with
       | None -> stats.discarded_concolic <- stats.discarded_concolic + 1
       | Some t ->
           let is_new = not (IntSet.subset st.covered !covered) in
           covered := IntSet.union st.covered !covered;
           if config.strategy <> Cov || is_new then begin
             stats.tests <- stats.tests + 1;
             tests := t :: !tests
           end);
    stats.t_emit <- stats.t_emit +. (Unix.gettimeofday () -. t0);
    stats.t_emit_solve <- stats.t_emit_solve +. (Solver.solve_time !solver -. solve0);
    check_budget ()
  in
  let order branches =
    match config.strategy with
    | Rnd ->
        List.map snd
          (List.sort
             (fun (ka, _) (kb, _) -> Int.compare ka kb)
             (List.map (fun b -> (Random.State.bits ctx.rng, b)) branches))
    | Dfs | Cov -> branches
  in
  let rec explore st =
    let t0 = Unix.gettimeofday () in
    let stepped =
      try Step.step ctx st
      with Exec_error msg ->
        (* an unsupported construct on this path: abandon the path but
           keep exploring the rest of the program *)
        Logs.warn (fun m -> m "path abandoned: %s" msg);
        Some []
    in
    stats.t_step <- stats.t_step +. (Unix.gettimeofday () -. t0);
    match stepped with
    | None -> finish st
    | Some [] -> stats.abandoned <- stats.abandoned + 1
    | Some [ { br_cond = None; br_state; _ } ] -> explore br_state
    | Some branches ->
        List.iter
          (fun b ->
            match b.br_cond with
            | None -> explore b.br_state
            | Some c when Expr.is_true c -> explore b.br_state
            | Some c when Expr.is_false c -> stats.infeasible <- stats.infeasible + 1
            | Some c ->
                Solver.push !solver;
                (* model reuse: if the last model already satisfies the
                   branch condition it witnesses the child's
                   feasibility; no solver call needed *)
                let holds = Solver.holds !solver c in
                Solver.assert_ !solver c;
                spine := c :: !spine;
                let feasible =
                  holds
                  || begin
                       stats.solver_checks <- stats.solver_checks + 1;
                       Solver.check !solver = Solver.Sat
                     end
                in
                (try
                   if feasible then explore (add_cond c b.br_state)
                   else stats.infeasible <- stats.infeasible + 1
                 with Stop ->
                   Solver.pop !solver;
                   raise Stop);
                Solver.pop !solver;
                spine := List.tl !spine;
                maybe_rebuild ())
          (order branches)
  in
  (try explore st0 with Stop -> ());
  {
    tests = List.rev !tests;
    covered = !covered;
    total_stmts = ctx.nstmts;
    stats;
    solve_time = Solver.solve_time !solver;
    total_time = Unix.gettimeofday () -. t_start;
  }
