(* Path exploration and test emission.

   Default strategy is depth-first search to exhaustion with eager
   pruning of unsatisfiable branches, using the solver incrementally
   (scopes pushed and popped along the DFS spine), exactly as the
   paper configures Z3 (§6).  Alternative strategies enabled by the
   continuation design (§5.1.2): random branch ordering and a greedy
   coverage mode that only emits coverage-increasing tests. *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
module Solver = Smt.Solver
open Runtime

type strategy = Dfs | Rnd | Cov

type config = {
  max_tests : int option;
  max_paths : int option;
  strategy : strategy;
  stop_at_full_coverage : bool;
  rebuild_size_threshold : int;
      (** SAT variables a solver may accumulate before it is eligible
          for a rebuild (dead variables from popped scopes dominate
          past this point) *)
  rebuild_max_spine : int;
      (** rebuild only when the DFS spine is at most this deep, so the
          fresh solver re-asserts few scopes *)
  sat_options : Smt.Sat.options;
      (** CDCL tuning (phase saving, target phases, learnt-database
          reduction, clause minimisation) for every solver of the run *)
  word_rewrite : bool;
      (** run {!Smt.Expr.simplify} on asserted terms before blasting *)
}

let default_config =
  {
    max_tests = None;
    max_paths = None;
    strategy = Dfs;
    stop_at_full_coverage = false;
    rebuild_size_threshold = 4000;
    rebuild_max_spine = 8;
    sat_options = Smt.Sat.default_options;
    word_rewrite = true;
  }

(* A read-out of the run's metrics.  The source of truth is the
   [Obs] registry threaded through [Runtime.ctx]; this record is a
   façade computed from a registry snapshot so existing consumers
   (CLI summary lines, the bench tables) keep working. *)
type stats = {
  mutable paths : int;  (** completed feasible paths *)
  mutable tests : int;
  mutable infeasible : int;  (** branches pruned by the solver *)
  mutable abandoned : int;  (** paths cut by unrolling/recirc bounds *)
  mutable discarded_taint : int;  (** tests dropped for tainted ports *)
  mutable discarded_concolic : int;
  mutable t_step : float;  (** interpretation time *)
  mutable t_emit : float;  (** test-construction time (includes its solver calls) *)
  mutable t_emit_solve : float;  (** solver time spent inside test construction *)
  mutable solver_checks : int;
      (** all solver checks of the run — branch feasibility plus the
          ones issued during test construction *)
}

type result = {
  tests : Testspec.t list;
  covered : IntSet.t;
  total_stmts : int;
  stats : stats;
  solve_time : float;
  total_time : float;
}

let empty_stats () =
  {
    paths = 0;
    tests = 0;
    infeasible = 0;
    abandoned = 0;
    discarded_taint = 0;
    discarded_concolic = 0;
    t_step = 0.0;
    t_emit = 0.0;
    t_emit_solve = 0.0;
    solver_checks = 0;
  }

(* the façade: project a (delta) snapshot of the run's registry onto
   the historical stats record *)
let stats_of_snapshot (d : Obs.Snapshot.t) : stats =
  let i = Obs.Snapshot.get_int d and f = Obs.Snapshot.get_float d in
  {
    paths = i "explore.paths";
    tests = i "explore.tests";
    infeasible = i "explore.infeasible";
    abandoned = i "explore.abandoned";
    discarded_taint = i "explore.discarded_taint";
    discarded_concolic = i "explore.discarded_concolic";
    t_step = f "explore.t_step";
    t_emit = f "explore.t_emit";
    t_emit_solve = f "explore.t_emit_solve";
    solver_checks = i "solver.checks";
  }

(* accumulate [s] into [acc] (kept for callers that merge stats
   records directly; the batch driver merges registry snapshots) *)
let add_stats acc (s : stats) =
  acc.paths <- acc.paths + s.paths;
  acc.tests <- acc.tests + s.tests;
  acc.infeasible <- acc.infeasible + s.infeasible;
  acc.abandoned <- acc.abandoned + s.abandoned;
  acc.discarded_taint <- acc.discarded_taint + s.discarded_taint;
  acc.discarded_concolic <- acc.discarded_concolic + s.discarded_concolic;
  acc.t_step <- acc.t_step +. s.t_step;
  acc.t_emit <- acc.t_emit +. s.t_emit;
  acc.t_emit_solve <- acc.t_emit_solve +. s.t_emit_solve;
  acc.solver_checks <- acc.solver_checks + s.solver_checks

let coverage_pct r =
  if r.total_stmts = 0 then 100.0
  else 100.0 *. float_of_int (IntSet.cardinal r.covered) /. float_of_int r.total_stmts

exception Stop

(* ------------------------------------------------------------------ *)
(* Test construction *)

let concretize_key model (name, sk) =
  let km =
    match sk with
    | SkExact e -> Testspec.MExact (model e)
    | SkTernary (v, m) -> Testspec.MTernary (model v, model m)
    | SkLpm (v, l) -> Testspec.MLpm (model v, l)
    | SkRange (a, b) -> Testspec.MRange (model a, model b)
    | SkOptional (Some v) -> Testspec.MOptional (Some (model v))
    | SkOptional None -> Testspec.MOptional None
  in
  (name, km)

let concretize_entry model (se : sym_entry) : Testspec.entry =
  {
    e_table = se.se_table;
    e_keys = List.map (concretize_key model) se.se_keys;
    e_action = se.se_action;
    e_args = List.map (fun (n, e) -> (n, model e)) se.se_args;
    e_priority = se.se_priority;
  }

(* soft randomization of free test inputs — in-port, synthesized
   action arguments, and packet payload (the paper picks the output
   port "at random", §3).  Implemented as SAT phase suggestions, which
   cost no clauses: all-zero packets would hide data-dependent bugs
   (e.g. shifts of zero). *)
let randomize_free_inputs ctx solver st =
  if ctx.opts.randomize then begin
    let pref e =
      match e.Expr.node with
      | Expr.Var _ -> Solver.suggest solver e (Bits.random ctx.rng (Expr.width e))
      | _ -> ()
    in
    pref st.in_port;
    List.iter (fun se -> List.iter (fun (_, e) -> pref e) se.se_args) st.entries;
    List.iter pref st.chunks
  end

let build_test ctx solver (st : state) : Testspec.t option =
  randomize_free_inputs ctx solver st;
  match Concolic.resolve solver st with
  | Concolic.Infeasible -> None
  | Concolic.Resolved model ->
      let taint_of e =
        let m = Expr.taint_mask e in
        if st.ctrl_taint then Bits.ones (Bits.width m) else m
      in
      let input =
        Testspec.packet ~port:(model st.in_port) (model (input_expr st))
      in
      let outputs =
        if st.dropped then []
        else
          List.rev_map
            (fun o ->
              {
                Testspec.port = model o.o_port;
                data = model o.o_data;
                dontcare = taint_of o.o_data;
              })
            st.outputs
      in
      let entries = List.rev_map (concretize_entry model) st.entries in
      Some
        (Testspec.make ~input ~outputs ~entries ~registers:(List.rev st.reg_inits)
           ~covered:(IntSet.elements st.covered)
           ~comment:(String.concat " > " (List.rev st.trace)))

(* a test is flaky if the packet's fate or destination is tainted *)
let port_tainted st =
  st.ctrl_taint || List.exists (fun o -> Expr.tainted o.o_port) st.outputs

(* ------------------------------------------------------------------ *)
(* DFS driver *)

let run ?(config = default_config) (ctx : ctx) (st0 : state) : result =
  let reg = ctx.obs in
  (* the run reports deltas against this baseline, so a registry that
     already carries earlier runs (same prepared context) stays sound *)
  let snap0 = Obs.Registry.snapshot reg in
  let t_start = Obs.Clock.now () in
  let c_paths = Obs.Registry.counter reg "explore.paths" in
  let c_tests = Obs.Registry.counter reg "explore.tests" in
  let c_infeasible = Obs.Registry.counter reg "explore.infeasible" in
  let c_abandoned = Obs.Registry.counter reg "explore.abandoned" in
  let c_disc_taint = Obs.Registry.counter reg "explore.discarded_taint" in
  let c_disc_concolic = Obs.Registry.counter reg "explore.discarded_concolic" in
  let c_branch_checks = Obs.Registry.counter reg "explore.branch_checks" in
  let c_rebuilds = Obs.Registry.counter reg "solver.rebuilds" in
  let tm_step = Obs.Registry.timer reg "explore.t_step" in
  let tm_emit = Obs.Registry.timer reg "explore.t_emit" in
  let tm_emit_solve = Obs.Registry.timer reg "explore.t_emit_solve" in
  let tm_total = Obs.Registry.timer reg "explore.total_time" in
  (* solver time lives in the registry and therefore accumulates
     across solver rebuilds (every solver of this run shares [reg]) *)
  let tm_solve = Obs.Registry.timer reg "solver.time" in
  let paths0 = Obs.Counter.value c_paths in
  let tests0 = Obs.Counter.value c_tests in
  let mk_solver () =
    Solver.create ~obs:reg ~sat_options:config.sat_options
      ~simplify:config.word_rewrite ctx.ectx
  in
  let solver = ref (mk_solver ()) in
  (* the DFS spine's active assertions, innermost first, mirroring the
     solver's scope stack; lets us rebuild a fresh solver when the old
     one has accumulated too many dead variables from popped scopes *)
  let spine : Expr.t list ref = ref [] in
  let maybe_rebuild () =
    if
      Solver.size !solver > config.rebuild_size_threshold
      && List.length !spine <= config.rebuild_max_spine
    then begin
      (* retire the old solver: push its residual counter activity
         into the registry before it becomes unreachable *)
      Solver.flush_stats !solver;
      Obs.Counter.incr c_rebuilds;
      let s = mk_solver () in
      List.iter
        (fun c ->
          Solver.push s;
          Solver.assert_ s c)
        (List.rev !spine);
      solver := s
    end
  in
  let sp_explore = Obs.Span.enter reg "explore" in
  let tests = ref [] in
  let covered = ref IntSet.empty in
  let check_budget () =
    (match config.max_tests with
    | Some n when Obs.Counter.value c_tests - tests0 >= n -> raise Stop
    | _ -> ());
    (match config.max_paths with
    | Some n when Obs.Counter.value c_paths - paths0 >= n -> raise Stop
    | _ -> ());
    if
      config.stop_at_full_coverage && ctx.nstmts > 0
      && IntSet.cardinal !covered >= ctx.nstmts
    then raise Stop
  in
  let finish st =
    Obs.Counter.incr c_paths;
    Obs.Span.with_ reg
      ~args:[ ("path", string_of_int (Obs.Counter.value c_paths - paths0)) ]
      "path"
      (fun () ->
        let t0 = Obs.Clock.now () in
        let solve0 = Obs.Timer.value tm_solve in
        (if port_tainted st then Obs.Counter.incr c_disc_taint
         else
           match build_test ctx !solver st with
           | None -> Obs.Counter.incr c_disc_concolic
           | Some t ->
               let is_new = not (IntSet.subset st.covered !covered) in
               covered := IntSet.union st.covered !covered;
               if config.strategy <> Cov || is_new then begin
                 Obs.Counter.incr c_tests;
                 tests := t :: !tests
               end);
        Obs.Timer.add tm_emit (Obs.Clock.now () -. t0);
        Obs.Timer.add tm_emit_solve (Obs.Timer.value tm_solve -. solve0));
    check_budget ()
  in
  let order branches =
    match config.strategy with
    | Rnd ->
        List.map snd
          (List.sort
             (fun (ka, _) (kb, _) -> Int.compare ka kb)
             (List.map (fun b -> (Random.State.bits ctx.rng, b)) branches))
    | Dfs | Cov -> branches
  in
  let rec explore st =
    let t0 = Obs.Clock.now () in
    let stepped =
      try Step.step ctx st
      with Exec_error msg ->
        (* an unsupported construct on this path: abandon the path but
           keep exploring the rest of the program *)
        Logs.warn (fun m -> m "path abandoned: %s" msg);
        Some []
    in
    Obs.Timer.add tm_step (Obs.Clock.now () -. t0);
    match stepped with
    | None -> finish st
    | Some [] -> Obs.Counter.incr c_abandoned
    | Some [ { br_cond = None; br_state; _ } ] -> explore br_state
    | Some branches ->
        List.iter
          (fun b ->
            match b.br_cond with
            | None -> explore b.br_state
            | Some c when Expr.is_true c -> explore b.br_state
            | Some c when Expr.is_false c -> Obs.Counter.incr c_infeasible
            | Some c ->
                Solver.push !solver;
                (* model reuse: if the last model already satisfies the
                   branch condition it witnesses the child's
                   feasibility; no solver call needed *)
                let holds = Solver.holds !solver c in
                Solver.assert_ !solver c;
                spine := c :: !spine;
                let feasible =
                  holds
                  || begin
                       Obs.Counter.incr c_branch_checks;
                       Solver.check !solver = Solver.Sat
                     end
                in
                (try
                   if feasible then explore (add_cond c b.br_state)
                   else Obs.Counter.incr c_infeasible
                 with Stop ->
                   Solver.pop !solver;
                   raise Stop);
                Solver.pop !solver;
                spine := List.tl !spine;
                maybe_rebuild ())
          (order branches)
  in
  (try explore st0 with Stop -> ());
  Solver.flush_stats !solver;
  Obs.Span.exit reg sp_explore;
  let total = Obs.Clock.now () -. t_start in
  Obs.Timer.add tm_total total;
  let d = Obs.Snapshot.diff (Obs.Registry.snapshot reg) snap0 in
  {
    tests = List.rev !tests;
    covered = !covered;
    total_stmts = ctx.nstmts;
    stats = stats_of_snapshot d;
    solve_time = Obs.Snapshot.get_float d "solver.time";
    total_time = total;
  }
