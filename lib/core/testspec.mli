(** Abstract test specifications (§4, phase 3).

    A test is everything needed to exercise one program path on a real
    target: an ordered sequence of steps — packet injections with
    expected outputs, interleaved with control-plane updates — plus
    the initial control-plane configuration (table entries, register
    initialization).  Extern state (registers, counters, meters)
    persists between steps (§5).  Back ends ({!Backends.Stf},
    {!Backends.Ptf}, {!Backends.Proto}) concretize this representation
    into framework files; {!Sim.Harness} executes it on a software
    model against one persistent interpreter state. *)

module Bits = Bitv.Bits

(** One key field's match in a table entry. *)
type key_match =
  | MExact of Bits.t
  | MTernary of Bits.t * Bits.t  (** value, mask (1 = care) *)
  | MLpm of Bits.t * int  (** value, prefix length *)
  | MRange of Bits.t * Bits.t  (** inclusive bounds *)
  | MOptional of Bits.t option  (** [None] is the wildcard *)

(** A control-plane table entry (or parser value-set member, with
    [e_action = "__vs_member__"]). *)
type entry = {
  e_table : string;
  e_keys : (string * key_match) list;  (** key field name -> match *)
  e_action : string;
  e_args : (string * Bits.t) list;  (** action parameter name -> value *)
  e_priority : int option;
}

type register_init = { r_name : string; r_index : int; r_value : Bits.t }

(** A packet with its port; [dontcare] marks bits the target leaves
    undefined (tainted output, §5.3), which executors must ignore. *)
type packet = { port : Bits.t; data : Bits.t; dontcare : Bits.t }

(** One step of a test sequence, in execution order. *)
type step =
  | SInject of { input : packet; outputs : packet list }
      (** inject [input]; [outputs = []] means dropped *)
  | SEntry of entry  (** add a table entry before the next injection *)
  | SRegister of register_init  (** control-plane register write *)

type t = {
  steps : step list;  (** in execution order; at least one [SInject] *)
  entries : entry list;  (** initial configuration, before any step *)
  registers : register_init list;  (** initial register writes *)
  covered : int list;  (** ids of statements this test covers *)
  comment : string;  (** human-readable path description *)
}

val make :
  input:packet ->
  outputs:packet list ->
  entries:entry list ->
  registers:register_init list ->
  covered:int list ->
  comment:string ->
  t
(** A single-injection test — the historical shape; prints, executes
    and benches identically to the pre-sequence representation. *)

val make_seq :
  steps:step list ->
  entries:entry list ->
  registers:register_init list ->
  covered:int list ->
  comment:string ->
  t
(** An ordered multi-step test.  Raises [Invalid_argument] when
    [steps] contains no {!SInject}. *)

val packet : ?dontcare:Bits.t -> port:Bits.t -> Bits.t -> packet
(** [packet ~port data] builds a packet; a missing or size-mismatched
    [dontcare] defaults to all-zero (every bit checked). *)

val injects : t -> (packet * packet list) list
(** The packet injections of the sequence, in order. *)

val input : t -> packet
(** The first injected packet.  Raises [Invalid_argument] on a test
    with no injection (which {!make}/{!make_seq} never build). *)

val outputs : t -> packet list
(** The expected outputs of the {e first} injection ([] = dropped) —
    the whole story for single-packet tests; sequence-aware consumers
    iterate {!injects} or [steps] instead. *)

val is_sequence : t -> bool
(** [true] iff the test has more than a single injection step. *)

val is_drop : t -> bool
(** Every injection of the sequence expects no output. *)

val pp_key_match : Format.formatter -> key_match -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp_packet : Format.formatter -> packet -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
