(* Central run-time representation for the symbolic executor.

   A {!state} is the paper's "independent execution state object" (§6):
   the symbolic environment, collected path conditions, the
   continuation stack ({!work}), packet-sizing variables I/L/E
   (§5.2.1), control-plane objects, extern state, concolic call
   records, and coverage.  States are immutable; forking a path is
   ordinary functional update. *)

module Bits = Bitv.Bits
module Expr = Smt.Expr
module Env = Map.Make (String)
module IntSet = Set.Make (Int)
open P4

exception Exec_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Context: immutable program-wide data plus target hooks *)

type options = {
  unroll_bound : int;  (** parser-loop bound (visits per state per path) *)
  max_recirc : int;  (** recirculation bound *)
  fixed_packet_bytes : int option;  (** precondition: exact input size *)
  apply_constraints : bool;  (** apply @entry_restriction preconditions *)
  randomize : bool;  (** prefer random values for free test inputs *)
  seed : int;
  seq_packets : int;
      (** packets injected per test sequence; extern state (registers,
          counters, meters) persists across the packet boundaries.  1
          (the default) is the historical single-packet mode. *)
}

let default_options =
  {
    unroll_bound = 3;
    max_recirc = 2;
    fixed_packet_bytes = None;
    apply_constraints = true;
    randomize = true;
    seed = 1;
    seq_packets = 1;
  }

type ctx = {
  ectx : Expr.ctx;
      (** the run's term context; all terms of a run live here *)
  obs : Obs.Registry.t;
      (** the run's metrics registry; owned, like [ectx], by one
          domain at a time — the batch driver merges snapshots *)
  prog : Ast.program;
  tctx : Typing.ctx;
  parsers : (string, Ast.parser_decl) Hashtbl.t;
  controls : (string, Ast.control_decl) Hashtbl.t;
  nstmts : int;  (** total countable statements (coverage denominator) *)
  opts : options;
  rng : Random.State.t;
  mutable extern_hook : extern_hook;
  mutable reject_hook : reject_hook;
  mutable next_packet_hook : next_packet_hook;
      (** advances a finished pipeline to the next packet of a test
          sequence; installed by {!Oracle.prepare} to compose
          {!next_packet} with the target's pipeline-template [init].
          Term-free closure, shared across forked tasks like the other
          hooks. *)
  mutable uninit_is_zero : bool;
      (** target policy for uninitialized variables: BMv2 implicitly
          zero-initializes, Tofino leaves them undefined (Tbl. 6) *)
  mutable fresh_ctr : int;
}

and reject_hook = ctx -> frame -> string (* error constant name *) -> state -> branch list

and next_packet_hook = ctx -> state -> state

and extern_hook = ctx -> string -> Ast.expr list -> frame -> state -> extern_result

and extern_result =
  | RVal of state * Expr.t  (** expression-position extern: value result *)
  | RUnit of state  (** statement extern, single continuation *)
  | RBranch of branch list  (** forked continuations *)

and branch = { br_cond : Expr.t option; br_state : state; br_label : string }

and frame = {
  fr_scopes : string list;  (** env prefixes to search, innermost first *)
  fr_ctrl : Ast.control_decl option;  (** for action/table resolution *)
  fr_parser : Ast.parser_decl option;
}

and work =
  | WStmt of frame * Ast.stmt
  | WParserState of frame * string
  | WOp of string * (ctx -> state -> branch list)
      (** target glue / generic continuation (§5.1.2).

          INVARIANT: the closure must not capture an {!Expr.t} (or any
          value containing one) — terms reach it only through the
          [ctx]/[state] arguments.  {!map_terms} walks every
          term-bearing field of a state but cannot see into closures;
          snapshotting a state into a cloned term context relies on
          this.  Capturing names, AST nodes, frames, and concrete
          [Bits.t] is fine. *)
  | WExitFrame of exit_kind * string * (ctx -> state -> state)
      (** copy-out closure run when a frame is left; same
          no-captured-terms invariant as [WOp] *)

and exit_kind = KAction | KControl | KParserFrame

and concolic_call = {
  cc_var : Expr.t;  (** the placeholder variable *)
  cc_name : string;
  cc_args : Expr.t list;
  cc_impl : Bits.t list -> Bits.t;  (** concrete implementation *)
}

and sym_entry = {
  se_table : string;
  se_keys : (string * sym_key) list;
  se_action : string;
  se_args : (string * Expr.t) list;
  se_priority : int option;
}

and sym_key =
  | SkExact of Expr.t
  | SkTernary of Expr.t * Expr.t
  | SkLpm of Expr.t * int
  | SkRange of Expr.t * Expr.t
  | SkOptional of Expr.t option

and out_pkt = { o_port : Expr.t; o_data : Expr.t; o_note : string }

and pkt_record = {
  pd_chunks : Expr.t list;  (** input chunks of the packet, newest first *)
  pd_in_port : Expr.t;
  pd_outputs : out_pkt list;  (** newest first *)
  pd_dropped : bool;
}
(** A completed packet of a test sequence, archived at the boundary by
    {!next_packet}. *)

and state = {
  env : Expr.t Env.t;  (** leaf path -> value *)
  vartypes : Ast.typ Env.t;  (** declared variable path -> type *)
  path_cond : Expr.t list;  (** newest first *)
  work : work list;
  chunks : Expr.t list;  (** input chunks, newest first; I = concat (rev) *)
  live : Expr.t;  (** L *)
  emit_buf : Expr.t;  (** E *)
  sealed : bool;  (** input may not grow (a short-packet branch) *)
  in_port : Expr.t;
  entries : sym_entry list;  (** newest first *)
  registers : (string * Expr.t array) list;
  counters : (string * Expr.t array) list;
      (** counter extern cells (packet counts); taint-abstracted under
          symbolic indices, like registers *)
  meters : (string * Expr.t array) list;
      (** meter extern cells: the last recorded (tainted) color *)
  reg_inits : Testspec.register_init list;
  tbl_misses : (string * Expr.t list) list;
      (** newest first: programmable-table applications that took the
          miss branch (table name, evaluated key values).  The control
          plane is installed once for the whole test, so an entry
          synthesized by a LATER application of the same table — e.g.
          by the next packet of a sequence — must provably not match
          any of these keys, or the recorded miss would have been a
          hit on the real switch. *)
  covered : IntSet.t;
  concolic : concolic_call list;  (** newest first *)
  outputs : out_pkt list;  (** newest first *)
  dropped : bool;
  state_visits : int Env.t;
  recircs : int;
  phase : string;  (** target-defined pipeline phase (e.g. "ingress") *)
  ctrl_taint : bool;  (** control flow has branched on tainted data *)
  seq_left : int;  (** packets still to inject after the current one *)
  seq_done : pkt_record list;  (** archived packets, newest first *)
  trace : string list;  (** newest first *)
}

(* The term context of a state, recovered from an always-present term
   (for helpers that do not receive the run context). *)
let state_ectx st = Expr.ctx_of st.live

let empty_bits ectx = Expr.zero ectx 0

let fresh_name ctx prefix =
  ctx.fresh_ctr <- ctx.fresh_ctr + 1;
  Printf.sprintf "%s@%d" prefix ctx.fresh_ctr

let fresh_var ctx prefix w = Expr.var ctx.ectx (fresh_name ctx prefix) w

(* Packet boundary of a test sequence (§5): archive the finished
   packet's I/O, reset the per-packet packet model and pipeline
   bookkeeping, and mint a fresh input port.  Extern state (registers,
   counters, meters), the environment, control-plane entries, path
   conditions, coverage and concolic records all persist — that
   continuity is what lets a warm-up packet unlock register-dependent
   paths in a later one.  [ctrl_taint] is sticky: taint that influenced
   control flow taints the rest of the sequence. *)
let next_packet ctx ~port_width st =
  let archived =
    {
      pd_chunks = st.chunks;
      pd_in_port = st.in_port;
      pd_outputs = st.outputs;
      pd_dropped = st.dropped;
    }
  in
  let left = st.seq_left - 1 in
  {
    st with
    work = [];
    chunks = [];
    live = empty_bits ctx.ectx;
    emit_buf = empty_bits ctx.ectx;
    sealed = false;
    in_port = fresh_var ctx "$in_port" port_width;
    outputs = [];
    dropped = false;
    state_visits = Env.empty;
    recircs = 0;
    phase = "";
    seq_left = left;
    seq_done = archived :: st.seq_done;
    trace = Printf.sprintf "-- packet boundary (%d more)" left :: st.trace;
  }

let rec make_ctx ?(opts = default_options) ?obs (prog : Ast.program) ~nstmts tctx =
  let parsers = Hashtbl.create 8 and controls = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.DParser (pd, _) -> Hashtbl.replace parsers pd.p_name pd
      | Ast.DControl (cd, _) -> Hashtbl.replace controls cd.c_name cd
      | _ -> ())
    prog;
  {
    (* each run context owns a fresh term context: two prepared runs
       can coexist and interleave, or run on different domains *)
    ectx = Expr.create_ctx ();
    obs = (match obs with Some r -> r | None -> Obs.Registry.create ());
    prog;
    tctx;
    parsers;
    controls;
    nstmts;
    opts;
    rng = Random.State.make [| opts.seed |];
    extern_hook = (fun _ name _ _ _ -> fail "no handler for extern %s" name);
    reject_hook =
      (fun _ _ err st ->
        (* default: parsing stops; execution continues after the parser *)
        [ { br_cond = None; br_state = pop_to_reject err st; br_label = "reject:" ^ err } ]);
    (* default: archive the finished packet but queue no pipeline work
       for the next one (the target-composed hook from Oracle.prepare
       replaces this); with an empty work stack the explorer then
       finishes the path, so a missing hook degrades to single-packet
       behavior instead of looping *)
    next_packet_hook =
      (fun ctx st -> next_packet ctx ~port_width:(Expr.width st.in_port) st);
    uninit_is_zero = false;
    fresh_ctr = 0;
  }

and pop_to_reject err st =
  let rec go = function
    | [] -> []
    | WExitFrame (KParserFrame, _, _) :: _ as w -> w
    | _ :: rest -> go rest
  in
  { st with work = go st.work; trace = ("parser reject: " ^ err) :: st.trace }

let initial_state ctx ~port_width =
  {
    env = Env.empty;
    vartypes = Env.empty;
    path_cond = [];
    work = [];
    chunks = [];
    live = empty_bits ctx.ectx;
    emit_buf = empty_bits ctx.ectx;
    sealed = false;
    in_port = Expr.var ctx.ectx "$in_port" port_width;
    entries = [];
    registers = [];
    counters = [];
    meters = [];
    reg_inits = [];
    tbl_misses = [];
    covered = IntSet.empty;
    concolic = [];
    outputs = [];
    dropped = false;
    state_visits = Env.empty;
    recircs = 0;
    phase = "";
    ctrl_taint = false;
    seq_left = max 0 (ctx.opts.seq_packets - 1);
    seq_done = [];
    trace = [];
  }

(* ------------------------------------------------------------------ *)
(* Branch helpers *)

let continue_ st = [ { br_cond = None; br_state = st; br_label = "" } ]

let branch2 ~if_true:(l1, s1) ~if_false:(l2, s2) cond =
  [
    { br_cond = Some cond; br_state = s1; br_label = l1 };
    { br_cond = Some (Expr.bnot cond); br_state = s2; br_label = l2 };
  ]

let add_cond cond st = { st with path_cond = cond :: st.path_cond }
let note msg st = { st with trace = msg :: st.trace }

let cover pos st =
  if pos.Ast.line > 0 then { st with covered = IntSet.add pos.Ast.line st.covered }
  else st

(* ------------------------------------------------------------------ *)
(* Typed storage: leaf enumeration for a type *)

type leaf =
  | LfField of int  (** plain value leaf of the given width *)
  | LfValidity  (** header validity bit *)
  | LfStackNext  (** header-stack next-index counter (width 32) *)
  | LfVarbitLen  (** dynamic bit-length of a varbit field (width 32) *)

(* All storage leaves of a value of type [t] rooted at [path]. *)
let rec leaves ctx (t : Ast.typ) (path : string) : (string * leaf) list =
  match Typing.resolve ctx.tctx t with
  | TBit w | TInt w -> [ (path, LfField w) ]
  | TVarbit w ->
      (* varbit content is stored left-aligned in a max-width leaf with
         a companion length *)
      [ (path, LfField w); (path, LfVarbitLen) ]
  | TBool -> [ (path, LfField 1) ]
  | TError -> [ (path, LfField Typing.error_width) ]
  | TVoid -> []
  | TSpec _ -> []
  | TStack (h, n) ->
      let elem = List.concat (List.init n (fun i ->
          (Printf.sprintf "%s[%d]" path i, LfValidity)
          :: leaves_fields ctx h (Printf.sprintf "%s[%d]" path i)))
      in
      ((path, LfStackNext) :: elem)
  | TName n -> (
      match Typing.header_fields ctx.tctx n with
      | Some _ -> (path, LfValidity) :: leaves_fields ctx n path
      | None -> (
          match Typing.struct_fields ctx.tctx n with
          | Some fs ->
              List.concat_map (fun f -> leaves ctx f.Ast.f_typ (path ^ "." ^ f.Ast.f_name)) fs
          | None -> (
              match Typing.union_fields ctx.tctx n with
              | Some fs ->
                  (* unions: treat as struct of headers *)
                  List.concat_map
                    (fun f -> leaves ctx f.Ast.f_typ (path ^ "." ^ f.Ast.f_name))
                    fs
              | None -> (
                  match Hashtbl.find_opt ctx.tctx.Typing.enums n with
                  | Some _ -> [ (path, LfField Typing.enum_width) ]
                  | None -> fail "leaves: unknown type %s" n))))

and leaves_fields ctx hname path =
  match Typing.header_fields ctx.tctx hname with
  | Some fs ->
      List.concat_map (fun f -> leaves ctx f.Ast.f_typ (path ^ "." ^ f.Ast.f_name)) fs
  | None -> fail "leaves_fields: unknown header %s" hname

(* Initialize storage for a fresh variable of type [t].  [init]
   chooses leaf contents (e.g. taint for uninitialized data, zero for
   targets that zero-initialize). *)
let declare ctx ?(valid = false) ~init (t : Ast.typ) path st =
  let env =
    List.fold_left
      (fun env (p, leaf) ->
        match leaf with
        | LfField w -> Env.add p (init p w) env
        | LfValidity -> Env.add (p ^ ".$valid") (Expr.of_bool ctx.ectx valid) env
        | LfStackNext -> Env.add (p ^ ".$next") (Expr.zero ctx.ectx 32) env
        | LfVarbitLen -> Env.add (p ^ ".$vblen") (Expr.zero ctx.ectx 32) env)
      st.env (leaves ctx t path)
  in
  { st with env; vartypes = Env.add path t st.vartypes }

let init_taint ctx _ w = Expr.fresh_taint ctx.ectx w
let init_zero ctx _ w = Expr.zero ctx.ectx w

(** target policy for uninitialized storage *)
let init_uninit ctx = if ctx.uninit_is_zero then init_zero ctx else init_taint ctx

(* copy all leaves under [src] prefix to [dst] prefix *)
let copy_tree ctx t ~src ~dst st =
  let env =
    List.fold_left
      (fun env (p, leaf) ->
        let key_suffix =
          match leaf with
          | LfField _ -> ""
          | LfValidity -> ".$valid"
          | LfStackNext -> ".$next"
          | LfVarbitLen -> ".$vblen"
        in
        let skey = p ^ key_suffix in
        let dkey =
          (* p starts with src *)
          dst ^ String.sub skey (String.length src) (String.length skey - String.length src)
        in
        match Env.find_opt skey env with
        | Some v -> Env.add dkey v env
        | None -> fail "copy_tree: missing %s" skey)
      st.env (leaves ctx t src)
  in
  { st with env }

let read_leaf st path =
  match Env.find_opt path st.env with
  | Some v -> v
  | None -> fail "read of undeclared location %s" path

let write_leaf path v st = { st with env = Env.add path v st.env }

(* ------------------------------------------------------------------ *)
(* Name resolution *)

(* Resolve a bare variable name against a frame's scope chain;
   returns the full env path and declared type. *)
let resolve_var st (fr : frame) name : (string * Ast.typ) option =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        let key = scope ^ "." ^ name in
        match Env.find_opt key st.vartypes with
        | Some t -> Some (key, t)
        | None -> go rest)
  in
  go fr.fr_scopes

let find_action ctx (fr : frame) name : Ast.action_decl option =
  let local =
    match fr.fr_ctrl with
    | Some cd ->
        List.find_map
          (function
            | Ast.LAction a when a.act_name = name -> Some a
            | _ -> None)
          cd.c_locals
    | None -> None
  in
  match local with
  | Some a -> Some a
  | None -> Hashtbl.find_opt ctx.tctx.Typing.actions name

let find_table (fr : frame) name : Ast.table option =
  match fr.fr_ctrl with
  | Some cd ->
      List.find_map
        (function Ast.LTable t when t.tbl_name = name -> Some t | _ -> None)
        cd.c_locals
  | None -> None

(* ------------------------------------------------------------------ *)
(* Packet model (§5.2.1) *)

let input_width st = List.fold_left (fun acc c -> acc + Expr.width c) 0 st.chunks

let input_expr st =
  (* chunks are newest-first; the first chunk is the front of the wire
     packet, i.e. the most significant bits *)
  List.fold_left (fun acc c -> Expr.concat c acc) (empty_bits (state_ectx st)) st.chunks

let append_chunk ctx w st =
  let c = fresh_var ctx "$pkt" w in
  ({ st with chunks = c :: st.chunks; live = Expr.concat st.live c }, c)

type take_result =
  | TakeOk of state * Expr.t
  | TakeShort of state  (** the input ends before [w] bits are available *)

(* Take [w] bits from the front of the live packet, growing the
   required input if the live packet runs dry.  Returns every feasible
   outcome; the caller forks. *)
let take_bits ctx w st : take_result list =
  let lw = Expr.width st.live in
  if w <= lw then begin
    let bits = Expr.slice st.live ~hi:(lw - 1) ~lo:(lw - w) in
    let live =
      if w = lw then empty_bits ctx.ectx else Expr.slice st.live ~hi:(lw - w - 1) ~lo:0
    in
    [ TakeOk ({ st with live }, bits) ]
  end
  else begin
    let needed = w - lw in
    let ok =
      if st.sealed then None
      else begin
        match ctx.opts.fixed_packet_bytes with
        | Some bytes when input_width st + needed > bytes * 8 -> None
        | _ ->
            let st', _ = append_chunk ctx needed st in
            let lw' = Expr.width st'.live in
            let bits = Expr.slice st'.live ~hi:(lw' - 1) ~lo:(lw' - w) in
            let live =
              if w = lw' then empty_bits ctx.ectx
              else Expr.slice st'.live ~hi:(lw' - w - 1) ~lo:0
            in
            Some (TakeOk ({ st' with live }, bits))
      end
    in
    let short =
      (* with a fixed input size there is never a short packet *)
      match ctx.opts.fixed_packet_bytes with
      | Some _ -> None
      | None -> if st.sealed then Some (TakeShort st) else Some (TakeShort { st with sealed = true })
    in
    List.filter_map Fun.id [ ok; short ]
  end

(* Peek [w] bits without consuming (lookahead). *)
let peek_bits ctx w st : take_result list =
  List.map
    (function
      | TakeOk (st', bits) ->
          (* restore the consumed bits in front of the live packet *)
          TakeOk ({ st' with live = Expr.concat bits st'.live }, bits)
      | TakeShort st' -> TakeShort st')
    (take_bits ctx w st)

let prepend_live bits st = { st with live = Expr.concat bits st.live }
let append_live bits st = { st with live = Expr.concat st.live bits }

let emit_bits bits st = { st with emit_buf = Expr.concat st.emit_buf bits }

(* Deparser trigger point: prepend the emit buffer to the live packet. *)
let flush_emit st =
  { st with live = Expr.concat st.emit_buf st.live; emit_buf = empty_bits (state_ectx st) }

(* Pad the input with payload so the wire packet reaches [bytes]. *)
let pad_to_bytes ctx bytes st =
  let have = input_width st in
  if have >= bytes * 8 then st
  else begin
    let st', _ = append_chunk ctx ((bytes * 8) - have) st in
    st'
  end

let add_output ?(note = "") ~port ~data st =
  { st with outputs = { o_port = port; o_data = data; o_note = note } :: st.outputs }

(* ------------------------------------------------------------------ *)
(* Stateful extern state: registers, counters, meters.

   All three are assoc lists of cell arrays keyed by a stable name
   (the declaring block's type name plus the instance name), so the
   same instance resolves to the same cells on every pipeline
   invocation of a test sequence.  Updates are order-preserving
   in-place list rewrites: the assoc order — and with it
   [map_terms]/snapshot traversal order — depends only on declaration
   order, never on write order. *)

(* stable update: rewrite the one matching binding in place *)
let set_assoc name arr' tbl =
  List.map (fun ((n, _) as kv) -> if n = name then (n, arr') else kv) tbl

let find_register st name = List.assoc_opt name st.registers

(* create-if-absent: under stable keys a block entered repeatedly
   (recirculation, later sequence packets) keeps its existing cells *)
let add_register name ~size ~width st =
  if List.mem_assoc name st.registers then st
  else begin
    let arr = Array.init size (fun _ -> Expr.zero (state_ectx st) width) in
    { st with registers = (name, arr) :: st.registers }
  end

let read_register st name idx =
  match find_register st name with
  | Some arr when idx >= 0 && idx < Array.length arr -> Some arr.(idx)
  | _ -> None

let write_register st name idx v =
  match find_register st name with
  | Some arr ->
      let arr' = Array.copy arr in
      arr'.(idx) <- v;
      { st with registers = set_assoc name arr' st.registers }
  | None -> st

(* overwrite every cell with fresh taint: the effect of an update at a
   symbolic (unconcretized) index *)
let taint_all_cells st arr' =
  let ectx = state_ectx st in
  Array.map (fun c -> Expr.fresh_taint ectx (Expr.width c)) arr'

let taint_register st name =
  match find_register st name with
  | Some arr -> { st with registers = set_assoc name (taint_all_cells st arr) st.registers }
  | None -> st

let find_counter st name = List.assoc_opt name st.counters

let add_counter name ~size ~width st =
  if List.mem_assoc name st.counters then st
  else begin
    let arr = Array.init size (fun _ -> Expr.zero (state_ectx st) width) in
    { st with counters = (name, arr) :: st.counters }
  end

(* count(idx): bump the cell under a concrete index, taint the whole
   array under a symbolic one (the paper's taint abstraction for
   stateful externs whose value never reaches the output) *)
let bump_counter st name idx =
  match find_counter st name with
  | Some arr -> (
      match idx with
      | Some i when i >= 0 && i < Array.length arr ->
          let arr' = Array.copy arr in
          let ectx = state_ectx st in
          arr'.(i) <- Expr.add arr'.(i) (Expr.of_int ectx ~width:(Expr.width arr'.(i)) 1);
          { st with counters = set_assoc name arr' st.counters }
      | Some _ -> st
      | None -> { st with counters = set_assoc name (taint_all_cells st arr) st.counters })
  | None -> st

let find_meter st name = List.assoc_opt name st.meters

let add_meter name ~size ~width st =
  if List.mem_assoc name st.meters then st
  else begin
    let arr = Array.init size (fun _ -> Expr.zero (state_ectx st) width) in
    { st with meters = (name, arr) :: st.meters }
  end

(* executing a meter records a tainted color for the cell: meter state
   depends on timing the oracle cannot model (§5.3) *)
let execute_meter_state st name idx =
  match find_meter st name with
  | Some arr -> (
      let ectx = state_ectx st in
      match idx with
      | Some i when i >= 0 && i < Array.length arr ->
          let arr' = Array.copy arr in
          arr'.(i) <- Expr.fresh_taint ectx (Expr.width arr'.(i));
          { st with meters = set_assoc name arr' st.meters }
      | Some _ -> st
      | None -> { st with meters = set_assoc name (taint_all_cells st arr) st.meters })
  | None -> st

(* Resolve an extern instance name against a frame: the fresh
   per-invocation scopes first (local declarations), then the stable
   block-level keys (the declaring control's / parser's type name). *)
let find_extern_path find st (fr : frame) obj =
  let scopes =
    fr.fr_scopes
    @ (match fr.fr_ctrl with Some cd -> [ cd.Ast.c_name ] | None -> [])
    @ (match fr.fr_parser with Some pd -> [ pd.Ast.p_name ] | None -> [])
  in
  List.find_map
    (fun scope ->
      let k = scope ^ "." ^ obj in
      match find st k with Some _ -> Some k | None -> None)
    scopes

let find_register_path st fr obj = find_extern_path find_register st fr obj
let find_counter_path st fr obj = find_extern_path find_counter st fr obj
let find_meter_path st fr obj = find_extern_path find_meter st fr obj

(* ------------------------------------------------------------------ *)
(* Concolic call registration (§5.4) *)

let concolic_call ctx ~name ~impl ~width args st =
  let v = fresh_var ctx ("$concolic_" ^ name) width in
  let call = { cc_var = v; cc_name = name; cc_args = args; cc_impl = impl } in
  ({ st with concolic = call :: st.concolic }, v)

(* ------------------------------------------------------------------ *)
(* Snapshots.  A state is immutable but its terms belong to one term
   context; carrying a state across a fork means rewriting every term
   it holds into the receiving context.  [map_terms] enumerates every
   term-bearing field — the work stack holds none by the invariant on
   {!work} — so composing it with {!Expr.importer} is a complete
   snapshot restore. *)

let map_terms f st =
  let map_key = function
    | SkExact e -> SkExact (f e)
    | SkTernary (v, m) -> SkTernary (f v, f m)
    | SkLpm (e, p) -> SkLpm (f e, p)
    | SkRange (a, b) -> SkRange (f a, f b)
    | SkOptional o -> SkOptional (Option.map f o)
  in
  let map_entry en =
    {
      en with
      se_keys = List.map (fun (n, k) -> (n, map_key k)) en.se_keys;
      se_args = List.map (fun (n, e) -> (n, f e)) en.se_args;
    }
  in
  {
    st with
    env = Env.map f st.env;
    path_cond = List.map f st.path_cond;
    chunks = List.map f st.chunks;
    live = f st.live;
    emit_buf = f st.emit_buf;
    in_port = f st.in_port;
    entries = List.map map_entry st.entries;
    registers = List.map (fun (n, arr) -> (n, Array.map f arr)) st.registers;
    counters = List.map (fun (n, arr) -> (n, Array.map f arr)) st.counters;
    meters = List.map (fun (n, arr) -> (n, Array.map f arr)) st.meters;
    tbl_misses = List.map (fun (n, ks) -> (n, List.map f ks)) st.tbl_misses;
    concolic =
      List.map
        (fun cc -> { cc with cc_var = f cc.cc_var; cc_args = List.map f cc.cc_args })
        st.concolic;
    outputs =
      List.map (fun o -> { o with o_port = f o.o_port; o_data = f o.o_data }) st.outputs;
    seq_done =
      List.map
        (fun pd ->
          {
            pd with
            pd_chunks = List.map f pd.pd_chunks;
            pd_in_port = f pd.pd_in_port;
            pd_outputs =
              List.map (fun o -> { o with o_port = f o.o_port; o_data = f o.o_data }) pd.pd_outputs;
          })
        st.seq_done;
  }

let iter_terms f st = ignore (map_terms (fun e -> f e; e) st)

(* Rough in-heap size of the terms a state pins, for deciding whether
   a snapshot is cheaper than a replay.  [Obj.reachable_words] is
   useless here — every term physically embeds its context, whose
   arena holds every term of the run — so we sum per-term DAG node
   counts instead (shared structure across fields double-counts,
   which errs toward replay; ~80 bytes is a term record plus its
   arena bucket share). *)
let state_term_bytes st =
  let n = ref 0 in
  iter_terms (fun e -> n := !n + Expr.size e) st;
  80 * !n

(* A context for a forked subtree task: shares the immutable
   program-wide data, takes the fork's own term context / metrics
   registry / rng.  Hooks are target-installed functions on the
   parent; they carry no terms (same closure discipline as {!work})
   and are shared.  The copy picks up [fresh_ctr] at its fork-time
   value, which must be final for the parent — a name minted in the
   task below the parent's high-water mark could collide with a
   registry entry of a sibling branch at a different width. *)
let clone_ctx_for_task ctx ~ectx ~obs ~rng = { ctx with ectx; obs; rng }

(* ------------------------------------------------------------------ *)
(* Work-stack helpers *)

let push_work ws st = { st with work = ws @ st.work }

let push_stmts fr stmts st = push_work (List.map (fun s -> WStmt (fr, s)) stmts) st

(* Drop work items up to and including the first matching exit frame
   (for [return] and [exit]). *)
let pop_to_exit kinds st =
  let rec go = function
    | [] -> []
    | WExitFrame (k, _, _) :: _ as w when List.mem k kinds -> w
    | _ :: rest -> go rest
  in
  { st with work = go st.work }
