(* Random well-typed program generator for the self-validation
   campaign.

   Used for differential fuzzing of the oracle against the concrete
   simulator (the same methodology Gauntlet applies to P4 compilers,
   §8, pointed back at ourselves): for any generated program, every
   test the oracle emits must pass on the software model.

   Programs are emitted as P4 source so each fuzz case also exercises
   the lexer/parser.  Three architectures are covered (v1model,
   ebpf_model, tna) and the generated programs draw from the feature
   pool the oracle supports end to end: match-action tables with
   exact/ternary/lpm keys, action parameters and const entries with
   priorities, parser state machines with select over header stacks,
   slice assignments, conditional drops, and the v1model checksum
   extern.  Every program records which features it drew
   ({!gen.features}), so the campaign can assert generator coverage.

   The generated subset is deliberately deterministic on the software
   model: conditionally-parsed headers are only accessed under
   [isValid] guards, and on architectures whose uninitialized storage
   is undefined (tna) all metadata is written before it is read.
   Unguarded reads of the always-extracted Ethernet header are the one
   exception — on short-packet paths they read an invalid header,
   which the oracle soundly taints (the bits become don't-cares). *)

type arch = V1model | Ebpf | Tna

let arch_name = function V1model -> "v1model" | Ebpf -> "ebpf_model" | Tna -> "tna"

let arch_of_string = function
  | "v1model" -> Some V1model
  | "ebpf_model" -> Some Ebpf
  | "tna" -> Some Tna
  | _ -> None

let all_archs = [ V1model; Ebpf; Tna ]

type gen = { src : string; features : string list }

(** Every feature tag the generator can emit, for the coverage
    assertion in the test suite. *)
let feature_universe =
  [
    "arch.v1model";
    "arch.ebpf_model";
    "arch.tna";
    "parser.select";
    "parser.ipv4";
    "parser.extra";
    "parser.header_stack";
    "table.exact";
    "table.ternary";
    "table.lpm";
    "table.const_entries";
    "table.action_params";
    "stmt.if";
    "stmt.slice_assign";
    "stmt.drop";
    "extern.checksum";
    "extern.register_rw";
  ]

type rng = Random.State.t

let pick (st : rng) (xs : 'a list) = List.nth xs (Random.State.int st (List.length xs))
let range (st : rng) lo hi = lo + Random.State.int st (hi - lo + 1)
let chance (st : rng) p = Random.State.float st 1.0 < p

(* available scalar slots: (l-value syntax, width) *)
type slot = { path : string; width : int }

(* feature accumulator *)
type feats = { mutable tags : string list }

let mark fs tag = if not (List.mem tag fs.tags) then fs.tags <- tag :: fs.tags

(* ------------------------------------------------------------------ *)
(* Shared header layout *)

let headers_decls =
  {|
header eth_t { bit<48> dst; bit<48> src; bit<16> etype; }
header ipv4ish_t { bit<8> ttl; bit<8> proto; bit<16> csum; bit<32> saddr; bit<32> daddr; }
header extra_t { bit<8> a; bit<16> b; bit<24> c; }
header lab_t { bit<15> id; bit<1> bos; }
|}

let eth_slots =
  [
    { path = "hdr.eth.dst"; width = 48 };
    { path = "hdr.eth.src"; width = 48 };
    { path = "hdr.eth.etype"; width = 16 };
  ]

let ipv4_slots =
  [
    { path = "hdr.ipv4.ttl"; width = 8 };
    { path = "hdr.ipv4.proto"; width = 8 };
    { path = "hdr.ipv4.saddr"; width = 32 };
    { path = "hdr.ipv4.daddr"; width = 32 };
  ]

let extra_slots =
  [
    { path = "hdr.extra.a"; width = 8 };
    { path = "hdr.extra.b"; width = 16 };
    { path = "hdr.extra.c"; width = 24 };
  ]

let lab_slots = [ { path = "hdr.labs[0].id"; width = 15 } ]

let meta_slots ~meta =
  [
    { path = meta ^ ".m0"; width = 8 };
    { path = meta ^ ".m1"; width = 16 };
    { path = meta ^ ".m2"; width = 32 };
  ]

(* ------------------------------------------------------------------ *)
(* Expressions and statements *)

(* expression generator: produces a P4 expression string of the given
   width over the available slots *)
let rec gen_expr (st : rng) (slots : slot list) ~width ~depth : string =
  let const () = Printf.sprintf "%dw%d" width (Random.State.int st (1 lsl min width 24)) in
  let reads = slots in
  if depth = 0 || reads = [] then
    if reads <> [] && Random.State.bool st then begin
      let s = pick st reads in
      if s.width = width then s.path
      else if s.width > width then Printf.sprintf "%s[%d:%d]" s.path (width - 1) 0
      else Printf.sprintf "(bit<%d>)%s" width s.path
    end
    else const ()
  else begin
    let sub ?(w = width) () = gen_expr st slots ~width:w ~depth:(depth - 1) in
    match range st 0 9 with
    | 0 -> Printf.sprintf "(%s + %s)" (sub ()) (sub ())
    | 1 -> Printf.sprintf "(%s - %s)" (sub ()) (sub ())
    | 2 -> Printf.sprintf "(%s & %s)" (sub ()) (sub ())
    | 3 -> Printf.sprintf "(%s | %s)" (sub ()) (sub ())
    | 4 -> Printf.sprintf "(%s ^ %s)" (sub ()) (sub ())
    | 5 -> Printf.sprintf "(~%s)" (sub ())
    | 6 -> Printf.sprintf "(%s << %d)" (sub ()) (range st 0 (min width 7))
    | 7 -> Printf.sprintf "(%s >> %d)" (sub ()) (range st 0 (min width 7))
    | 8 when width >= 2 ->
        let wl = range st 1 (width - 1) in
        Printf.sprintf "(%s ++ %s)"
          (gen_expr st slots ~width:(width - wl) ~depth:(depth - 1))
          (gen_expr st slots ~width:wl ~depth:(depth - 1))
    | _ ->
        Printf.sprintf "(%s %s %s ? %s : %s)" (sub ())
          (pick st [ "=="; "!=" ])
          (sub ()) (sub ()) (sub ())
  end

let gen_cond (st : rng) slots ~depth : string =
  let w = pick st [ 8; 16 ] in
  Printf.sprintf "%s %s %s"
    (gen_expr st slots ~width:w ~depth)
    (pick st [ "=="; "!="; "<"; "<="; ">"; ">=" ])
    (gen_expr st slots ~width:w ~depth)

(* statements over [writable] destinations reading from [slots] *)
let rec gen_stmts (st : rng) fs ~(writable : slot list) ~(slots : slot list) ~n ~depth :
    string list =
  if n = 0 then []
  else begin
    let assign ~depth:d =
      let dst = pick st writable in
      Printf.sprintf "%s = %s;" dst.path (gen_expr st slots ~width:dst.width ~depth:d)
    in
    let stmt =
      match range st 0 5 with
      | 0 | 1 | 2 -> assign ~depth:2
      | 3 when depth > 0 ->
          mark fs "stmt.if";
          Printf.sprintf "if (%s) {\n      %s\n    } else {\n      %s\n    }"
            (gen_cond st slots ~depth:1)
            (String.concat "\n      "
               (gen_stmts st fs ~writable ~slots ~n:(min 2 n) ~depth:(depth - 1)))
            (String.concat "\n      "
               (gen_stmts st fs ~writable ~slots ~n:1 ~depth:(depth - 1)))
      | 4 ->
          let dst = pick st writable in
          let hi = range st 0 (dst.width - 1) in
          let lo = range st 0 hi in
          mark fs "stmt.slice_assign";
          Printf.sprintf "%s[%d:%d] = %s;" dst.path hi lo
            (gen_expr st slots ~width:(hi - lo + 1) ~depth:1)
      | _ -> assign ~depth:1
    in
    stmt :: gen_stmts st fs ~writable ~slots ~n:(n - 1) ~depth
  end

(* ------------------------------------------------------------------ *)
(* Parser generation (shared by the three architectures) *)

type parser_features = { use_ipv4 : bool; use_extra : bool; use_stack : bool }

let gen_parser_features st fs =
  let pf =
    {
      use_ipv4 = chance st 0.8;
      use_extra = chance st 0.5;
      use_stack = chance st 0.5;
    }
  in
  mark fs "parser.select";
  if pf.use_ipv4 then mark fs "parser.ipv4";
  if pf.use_extra then mark fs "parser.extra";
  if pf.use_stack then mark fs "parser.header_stack";
  pf

(* the parser states after the start state; [start_extracts] is the
   extraction prologue of start (differs per architecture) *)
let parser_states (pf : parser_features) ~start_extracts : string =
  let b = Buffer.create 1024 in
  let arms =
    (if pf.use_ipv4 then [ "      0x0800 : parse_ipv4;" ] else [])
    @ (if pf.use_stack then [ "      0x8847 : parse_labs;" ] else [])
    @ (if pf.use_extra then [ "      0x1234 : parse_extra;" ] else [])
    @ [ "      default : accept;" ]
  in
  Buffer.add_string b
    (Printf.sprintf
       "  state start {\n%s    transition select(hdr.eth.etype) {\n%s\n    }\n  }\n"
       start_extracts (String.concat "\n" arms));
  if pf.use_ipv4 then
    Buffer.add_string b "  state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }\n";
  if pf.use_extra then
    Buffer.add_string b
      (Printf.sprintf
         "  state parse_extra {\n    pkt.extract(hdr.extra);\n    transition select(hdr.extra.a) {\n      %s\n      default : accept;\n    }\n  }\n"
         (if pf.use_ipv4 then "0xFF : parse_ipv4;" else "0xFE : accept;"));
  if pf.use_stack then
    Buffer.add_string b
      "  state parse_labs {\n    pkt.extract(hdr.labs.next);\n    transition select(hdr.labs.last.bos) {\n      0 : parse_labs;\n      1 : accept;\n    }\n  }\n";
  Buffer.contents b

let headers_struct (pf : parser_features) =
  let fields =
    [ "eth_t eth;" ]
    @ (if pf.use_ipv4 then [ "ipv4ish_t ipv4;" ] else [])
    @ (if pf.use_extra then [ "extra_t extra;" ] else [])
    @ if pf.use_stack then [ "lab_t[3] labs;" ] else []
  in
  Printf.sprintf "struct headers_t { %s }" (String.concat " " fields)

let emit_all (pf : parser_features) ~pkt =
  String.concat "\n    "
    ([ Printf.sprintf "%s.emit(hdr.eth);" pkt ]
    @ (if pf.use_ipv4 then [ Printf.sprintf "%s.emit(hdr.ipv4);" pkt ] else [])
    @ (if pf.use_extra then [ Printf.sprintf "%s.emit(hdr.extra);" pkt ] else [])
    @ if pf.use_stack then [ Printf.sprintf "%s.emit(hdr.labs);" pkt ] else [])

(* guarded blocks over conditionally-valid headers *)
let guarded_blocks st fs (pf : parser_features) ~writable ~slots ~indent : string list =
  let block guard extra_w extra_r =
    let writable = extra_w @ writable and slots = extra_r @ slots in
    let body = gen_stmts st fs ~writable ~slots ~n:(range st 1 2) ~depth:1 in
    mark fs "stmt.if";
    Printf.sprintf "%sif (%s) {\n%s  %s\n%s}" indent guard indent
      (String.concat ("\n" ^ indent ^ "  ") body)
      indent
  in
  (if pf.use_ipv4 then [ block "hdr.ipv4.isValid()" ipv4_slots ipv4_slots ] else [])
  @ (if pf.use_extra && chance st 0.7 then
       [ block "hdr.extra.isValid()" extra_slots extra_slots ]
     else [])
  @
  if pf.use_stack && chance st 0.7 then
    [ block "hdr.labs[0].isValid()" lab_slots lab_slots ]
  else []

(* ------------------------------------------------------------------ *)
(* Tables *)

(* a random table over the given slots; [primary] emits the statement
   that gives the hit action an architecture-visible effect (set the
   egress port / rewrite a header field) *)
let gen_table (st : rng) fs ~(writable : slot list) ~(slots : slot list) ~primary ~idx :
    string * string =
  let key = pick st slots in
  let kind = pick st [ "exact"; "ternary"; "lpm" ] in
  mark fs ("table." ^ kind);
  let nactions = range st 1 2 in
  let actions =
    List.init nactions (fun i ->
        let body =
          String.concat "\n    " (gen_stmts st fs ~writable ~slots ~n:(range st 1 2) ~depth:1)
        in
        (* a wide data parameter written into a slot exercises
           action-parameter plumbing end to end *)
        let data_param =
          if chance st 0.5 then begin
            mark fs "table.action_params";
            let dst = pick st writable in
            Some
              ( Printf.sprintf ", bit<%d> v" dst.width,
                Printf.sprintf "%s = v;\n    " dst.path )
          end
          else None
        in
        let param_sig, param_stmt =
          match data_param with Some (s, b) -> (s, b) | None -> ("", "")
        in
        mark fs "table.action_params";
        Printf.sprintf "action t%d_act%d(bit<9> p%s) {\n    %s\n    %s%s\n  }" idx i
          param_sig (primary "p") param_stmt body)
  in
  let decl =
    Printf.sprintf
      {|%s
  action t%d_miss() { }
  table t%d {
    key = { %s : %s @name("k%d"); }
    actions = { %s t%d_miss; }
    default_action = t%d_miss();
  }|}
      (String.concat "\n  " actions)
      idx idx key.path kind idx
      (String.concat " " (List.init nactions (fun i -> Printf.sprintf "t%d_act%d;" idx i)))
      idx idx
  in
  (decl, Printf.sprintf "t%d.apply();" idx)

(* a ternary table with const entries and priorities (the
   Ignore_entry_priority fault class surface) *)
let gen_const_table (st : rng) fs ~(writable : slot list) ~idx : string * string =
  mark fs "table.const_entries";
  mark fs "table.ternary";
  mark fs "table.action_params";
  let dst = pick st (List.filter (fun s -> s.width >= 8) writable) in
  let n_entries = range st 2 3 in
  let entries =
    List.init n_entries (fun i ->
        let v = Random.State.int st 0x10000 in
        let m = pick st [ 0xFFFF; 0xFF00; 0x0FF0; 0xF00F ] in
        let prio = if chance st 0.6 then Printf.sprintf "@priority(%d) " (i + 1) else "" in
        Printf.sprintf "      %s(0x%04X &&& 0x%04X) : c%d_mark(%d);" prio v m idx
          (Random.State.int st 200))
  in
  let decl =
    Printf.sprintf
      {|action c%d_mark(bit<8> v) { %s = (bit<%d>)v; }
  action c%d_skip() { }
  table c%d {
    key = { hdr.eth.etype : ternary @name("ce%d"); }
    actions = { c%d_mark; c%d_skip; }
    const entries = {
%s
    }
    default_action = c%d_skip();
  }|}
      idx dst.path dst.width idx idx idx idx idx
      (String.concat "\n" entries)
      idx
  in
  (decl, Printf.sprintf "c%d.apply();" idx)

(* ------------------------------------------------------------------ *)
(* v1model *)

let gen_v1model (st : rng) fs : string =
  mark fs "arch.v1model";
  let pf = gen_parser_features st fs in
  let b = Buffer.create 4096 in
  Buffer.add_string b headers_decls;
  Buffer.add_string b (headers_struct pf);
  Buffer.add_string b "\nstruct meta_t { bit<8> m0; bit<16> m1; bit<32> m2; }\n\n";
  Buffer.add_string b
    "parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,\n         inout standard_metadata_t sm) {\n";
  Buffer.add_string b (parser_states pf ~start_extracts:"    pkt.extract(hdr.eth);\n");
  Buffer.add_string b "}\n";
  Buffer.add_string b "control V(inout headers_t hdr, inout meta_t meta) { apply { } }\n";
  Buffer.add_string b
    "control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {\n";
  let base = eth_slots @ meta_slots ~meta:"meta" in
  let primary p = Printf.sprintf "sm.egress_spec = %s;" p in
  let ntables = range st 1 2 in
  let tables =
    List.init ntables (fun i -> gen_table st fs ~writable:base ~slots:base ~primary ~idx:i)
  in
  let tables =
    if chance st 0.5 then tables @ [ gen_const_table st fs ~writable:base ~idx:0 ]
    else tables
  in
  List.iter (fun (decl, _) -> Buffer.add_string b ("  " ^ decl ^ "\n")) tables;
  (* a stateful register with a read-after-write: under sequence mode
     (seq_packets > 1) the second packet observes the first one's write *)
  let use_reg = chance st 0.35 in
  let reg_idx = range st 0 7 in
  if use_reg then begin
    mark fs "extern.register_rw";
    Buffer.add_string b "  register<bit<32>>(8) regs;\n"
  end;
  Buffer.add_string b "  apply {\n";
  if use_reg then begin
    mark fs "stmt.if";
    Buffer.add_string b
      (Printf.sprintf "    regs.read(meta.m2, %d);\n" reg_idx);
    Buffer.add_string b
      (Printf.sprintf "    regs.write(%d, meta.m2 + %d);\n" reg_idx (range st 1 5));
    Buffer.add_string b
      (Printf.sprintf "    if (meta.m2 == 0) {\n      sm.egress_spec = %d;\n    }\n"
         (range st 1 9))
  end;
  let stmts = gen_stmts st fs ~writable:base ~slots:base ~n:(range st 2 4) ~depth:2 in
  List.iter (fun s -> Buffer.add_string b ("    " ^ s ^ "\n")) stmts;
  List.iter (fun (_, app) -> Buffer.add_string b ("    " ^ app ^ "\n")) tables;
  List.iter
    (fun blk -> Buffer.add_string b (blk ^ "\n"))
    (guarded_blocks st fs pf ~writable:base ~slots:base ~indent:"    ");
  if chance st 0.5 then begin
    mark fs "stmt.drop";
    Buffer.add_string b
      (Printf.sprintf "    if (%s) {\n      mark_to_drop(sm);\n    }\n"
         (gen_cond st base ~depth:1))
  end;
  Buffer.add_string b "  }\n}\n";
  Buffer.add_string b
    "control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }\n";
  if pf.use_ipv4 && chance st 0.5 then begin
    mark fs "extern.checksum";
    Buffer.add_string b
      {|control C(inout headers_t hdr, inout meta_t meta) {
  apply {
    update_checksum(hdr.ipv4.isValid(),
                    {hdr.ipv4.ttl, hdr.ipv4.proto, hdr.ipv4.saddr, hdr.ipv4.daddr},
                    hdr.ipv4.csum, HashAlgorithm.csum16);
  }
}
|}
  end
  else
    Buffer.add_string b "control C(inout headers_t hdr, inout meta_t meta) { apply { } }\n";
  Buffer.add_string b
    (Printf.sprintf "control D(packet_out pkt, in headers_t hdr) {\n  apply {\n    %s\n  }\n}\n"
       (emit_all pf ~pkt:"pkt"));
  Buffer.add_string b "V1Switch(P(), V(), I(), E(), C(), D()) main;\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* ebpf_model *)

let gen_ebpf (st : rng) fs : string =
  mark fs "arch.ebpf_model";
  let pf = gen_parser_features st fs in
  let b = Buffer.create 4096 in
  Buffer.add_string b headers_decls;
  Buffer.add_string b (headers_struct pf);
  Buffer.add_string b "\n\nparser prs(packet_in pkt, out headers_t hdr) {\n";
  Buffer.add_string b (parser_states pf ~start_extracts:"    pkt.extract(hdr.eth);\n");
  Buffer.add_string b "}\n";
  Buffer.add_string b "control pipe(inout headers_t hdr, out bool pass) {\n";
  let base = eth_slots in
  (* table actions only rewrite header fields: the filter's verdict
     stays in the apply block *)
  let primary _ = "hdr.eth.dst[8:0] = p;" in
  let tables =
    if chance st 0.7 then
      [ gen_table st fs ~writable:base ~slots:base ~primary ~idx:0 ]
    else []
  in
  List.iter (fun (decl, _) -> Buffer.add_string b ("  " ^ decl ^ "\n")) tables;
  Buffer.add_string b "  apply {\n";
  (* the verdict is always initialized first: [pass] is an out param *)
  Buffer.add_string b (Printf.sprintf "    pass = %b;\n" (Random.State.bool st));
  let stmts = gen_stmts st fs ~writable:base ~slots:base ~n:(range st 1 3) ~depth:1 in
  List.iter (fun s -> Buffer.add_string b ("    " ^ s ^ "\n")) stmts;
  List.iter (fun (_, app) -> Buffer.add_string b ("    " ^ app ^ "\n")) tables;
  List.iter
    (fun blk -> Buffer.add_string b (blk ^ "\n"))
    (guarded_blocks st fs pf ~writable:base ~slots:base ~indent:"    ");
  mark fs "stmt.if";
  mark fs "stmt.drop";
  Buffer.add_string b
    (Printf.sprintf "    if (%s) {\n      pass = %b;\n    }\n" (gen_cond st base ~depth:1)
       (Random.State.bool st));
  Buffer.add_string b "  }\n}\n";
  Buffer.add_string b "ebpfFilter(prs(), pipe()) main;\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* tna *)

let gen_tna (st : rng) fs : string =
  mark fs "arch.tna";
  let pf = gen_parser_features st fs in
  let b = Buffer.create 4096 in
  Buffer.add_string b headers_decls;
  Buffer.add_string b (headers_struct pf);
  Buffer.add_string b "\nstruct meta_t { bit<8> m0; bit<16> m1; bit<32> m2; }\n\n";
  Buffer.add_string b
    "parser IgParser(packet_in pkt, out headers_t hdr, out meta_t md,\n                out ingress_intrinsic_metadata_t ig_intr_md) {\n";
  Buffer.add_string b
    (parser_states pf
       ~start_extracts:"    pkt.extract(ig_intr_md);\n    pkt.extract(hdr.eth);\n");
  Buffer.add_string b "}\n";
  Buffer.add_string b
    {|control Ig(inout headers_t hdr, inout meta_t md,
           in ingress_intrinsic_metadata_t ig_intr_md,
           in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
           inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
           inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
|};
  let base = eth_slots @ meta_slots ~meta:"md" in
  let primary p = Printf.sprintf "ig_tm_md.ucast_egress_port = %s;" p in
  let ntables = range st 1 2 in
  let tables =
    List.init ntables (fun i -> gen_table st fs ~writable:base ~slots:base ~primary ~idx:i)
  in
  let tables =
    if chance st 0.4 then tables @ [ gen_const_table st fs ~writable:base ~idx:0 ]
    else tables
  in
  List.iter (fun (decl, _) -> Buffer.add_string b ("  " ^ decl ^ "\n")) tables;
  Buffer.add_string b "  apply {\n";
  (* tna metadata is uninitialized garbage: define before any use *)
  Buffer.add_string b
    (Printf.sprintf "    md.m0 = %d;\n    md.m1 = %d;\n    md.m2 = %d;\n"
       (Random.State.int st 256) (Random.State.int st 65536) (Random.State.int st 100000));
  let stmts = gen_stmts st fs ~writable:base ~slots:base ~n:(range st 1 3) ~depth:2 in
  List.iter (fun s -> Buffer.add_string b ("    " ^ s ^ "\n")) stmts;
  List.iter (fun (_, app) -> Buffer.add_string b ("    " ^ app ^ "\n")) tables;
  List.iter
    (fun blk -> Buffer.add_string b (blk ^ "\n"))
    (guarded_blocks st fs pf ~writable:base ~slots:base ~indent:"    ");
  if chance st 0.4 then begin
    mark fs "stmt.drop";
    Buffer.add_string b
      (Printf.sprintf "    if (%s) {\n      ig_dprsr_md.drop_ctl = 1;\n    }\n"
         (gen_cond st base ~depth:1))
  end;
  Buffer.add_string b "  }\n}\n";
  Buffer.add_string b
    (Printf.sprintf
       {|control IgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
  apply {
    %s
  }
}
|}
       (emit_all pf ~pkt:"pkt"));
  Buffer.add_string b
    {|parser EgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out egress_intrinsic_metadata_t eg_intr_md) {
  state start {
    pkt.extract(eg_intr_md);
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control Eg(inout headers_t hdr, inout meta_t md,
           in egress_intrinsic_metadata_t eg_intr_md,
           in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
           inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
           inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
  apply {
|};
  if chance st 0.4 then
    Buffer.add_string b
      (Printf.sprintf "    hdr.eth.src = 0x%012X;\n"
         (Random.State.int st 0x1000000));
  Buffer.add_string b
    {|  }
}
control EgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
  apply { pkt.emit(hdr.eth); }
}
Switch(Pipeline(IgParser(), Ig(), IgDeparser(), EgParser(), Eg(), EgDeparser())) main;
|};
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Entry points *)

(** Generate a random program for [arch] from a seed, with the list of
    generator features it exercises. *)
let generate_for ~(arch : arch) ~seed : gen =
  let st = Random.State.make [| seed; Hashtbl.hash (arch_name arch) |] in
  let fs = { tags = [] } in
  let src =
    match arch with V1model -> gen_v1model st fs | Ebpf -> gen_ebpf st fs | Tna -> gen_tna st fs
  in
  { src; features = List.sort compare fs.tags }

(** Back-compat: a random v1model program from a seed. *)
let generate ~seed : string = (generate_for ~arch:V1model ~seed).src

(* ------------------------------------------------------------------ *)
(* Feature tags recovered from an AST.

   Corpus mutants have no generator provenance, so the campaign's
   feature-combination admission rule recomputes tags by inspecting
   the program.  The detectors mirror the [mark] sites above: a
   freshly generated program round-trips to the same tag set (the test
   suite asserts this), and a mutant that, say, grows a const-entry
   table out of a donor picks up [table.const_entries] exactly as if
   the generator had drawn it. *)

let tags_of_program (prog : P4.Ast.program) : string list =
  let open P4.Ast in
  let tags = ref [] in
  let mark t = if not (List.mem t !tags) then tags := t :: !tags in
  let rec expr e =
    match e with
    | ECall (EVar "update_checksum", _) -> mark "extern.checksum"
    | EMember (a, _) | EUnop (_, a) | ECast (_, a) -> expr a
    | ESlice (a, _, _) -> expr a
    | EIndex (a, i) -> expr a; expr i
    | EBinop (_, a, b) | EMask (a, b) | ERange (a, b) -> expr a; expr b
    | ETernary (a, b, c) -> expr a; expr b; expr c
    | ECall (f, args) -> expr f; List.iter expr args
    | EList es -> List.iter expr es
    | EBool _ | EInt _ | EString _ | EVar _ | ETypeArg _ | EDontCare | EDefault -> ()
  in
  let rec stmt s =
    match s with
    | SAssign (_, l, r) ->
        (match l with
        | ESlice _ -> mark "stmt.slice_assign"
        | EMember (_, "drop_ctl") -> mark "stmt.drop"
        | _ -> ());
        expr l; expr r
    | SCall (_, f, args) ->
        (match f with
        | EVar "mark_to_drop" -> mark "stmt.drop"
        | EVar "update_checksum" -> mark "extern.checksum"
        | _ -> ());
        expr f; List.iter expr args
    | SIf (_, c, t, e) ->
        mark "stmt.if";
        (* the ebpf generator drops by flipping [pass] under a guard *)
        List.iter
          (function SAssign (_, EVar "pass", _) -> mark "stmt.drop" | _ -> ())
          (t @ e);
        expr c; List.iter stmt t; List.iter stmt e
    | SSwitch (_, e, cases) ->
        expr e;
        List.iter (fun c -> Option.iter (List.iter stmt) c.sw_body) cases
    | SBlock b -> List.iter stmt b
    | SVarDecl (_, _, _, init) -> Option.iter expr init
    | SConstDecl (_, _, _, e) -> expr e
    | SReturn (_, e) -> Option.iter expr e
    | SExit _ | SEmpty -> ()
  in
  let typ = function TStack _ -> mark "parser.header_stack" | _ -> () in
  let local = function
    | LVar (t, _, init) -> typ t; Option.iter expr init
    | LConst (t, _, e) -> typ t; expr e
    | LAction a ->
        if a.act_params <> [] then mark "table.action_params";
        List.iter stmt a.act_body
    | LTable t ->
        List.iter
          (fun k ->
            (match k.tk_kind with
            | ("exact" | "ternary" | "lpm") as kind -> mark ("table." ^ kind)
            | _ -> ());
            expr k.tk_expr)
          t.tbl_keys;
        if t.tbl_entries <> [] then mark "table.const_entries";
        List.iter
          (fun e ->
            List.iter expr e.te_keys;
            List.iter expr e.te_args)
          t.tbl_entries
    | LInstantiation (t, args, _) ->
        (match t with
        | TSpec ("register", _) | TName "register" -> mark "extern.register_rw"
        | _ -> ());
        List.iter expr args
  in
  List.iter
    (fun d ->
      match d with
      | DParser (pd, _) ->
          List.iter local pd.p_locals;
          List.iter
            (fun s ->
              List.iter stmt s.st_stmts;
              match s.st_trans with
              | TrSelect (ks, cases) ->
                  mark "parser.select";
                  List.iter expr ks;
                  List.iter (fun c -> List.iter expr c.sel_keys) cases
              | TrDirect _ -> ())
            pd.p_states
      | DControl (cd, _) ->
          List.iter local cd.c_locals;
          List.iter stmt cd.c_body
      | DAction a ->
          if a.act_params <> [] then mark "table.action_params";
          List.iter stmt a.act_body
      | DStruct (_, fields, _) | DHeader (_, fields, _) | DHeaderUnion (_, fields, _) ->
          List.iter
            (fun f ->
              typ f.f_typ;
              match f.f_name with
              | "ipv4" -> mark "parser.ipv4"
              | "extra" -> mark "parser.extra"
              | _ -> ())
            fields
      | DInstantiation (tname, _, _, _) ->
          (match tname with
          | "V1Switch" -> mark "arch.v1model"
          | "ebpfFilter" -> mark "arch.ebpf_model"
          | "Switch" -> mark "arch.tna"
          | _ -> ())
      | _ -> ())
    prog;
  List.sort compare !tags
