(* Fixed P4 program corpus: the paper's running examples (Fig. 1) and
   a set of feature-focused programs used by the test suite and the
   validation experiments (§7). *)

(** Fig. 1a: forward on the EtherType through an exact-match table. *)
let fig1a =
  {|
header ethernet_t {
  bit<48> dst;
  bit<48> src;
  bit<16> etype;
}
struct headers_t { ethernet_t eth; }
struct meta_t { bit<9> output_port; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control MyVerify(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyIngress(inout headers_t h, inout meta_t meta,
                  inout standard_metadata_t sm) {
  action noop() { }
  action set_out(bit<9> port) {
    meta.output_port = port;
    sm.egress_spec = port;
  }
  table forward_table {
    key = { h.eth.etype : exact @name("etype"); }
    actions = { noop; set_out; }
    default_action = noop();
  }
  apply {
    h.eth.etype = 0xBEEF;
    forward_table.apply();
  }
}
control MyEgress(inout headers_t h, inout meta_t meta,
                 inout standard_metadata_t sm) { apply { } }
control MyCompute(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyDeparser(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); }
}
V1Switch(MyParser(), MyVerify(), MyIngress(), MyEgress(), MyCompute(), MyDeparser()) main;
|}

(** Fig. 1b: validate an Ethernet "checksum" carried in the EtherType. *)
let fig1b =
  {|
header ethernet_t {
  bit<48> dst;
  bit<48> src;
  bit<16> etype;
}
struct headers_t { ethernet_t eth; }
struct meta_t { bit<1> checksum_err; }

parser MyParser(packet_in pkt, out headers_t hdr, inout meta_t meta,
                inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control MyVerify(inout headers_t hdr, inout meta_t meta) {
  apply {
    meta.checksum_err = verify_checksum(hdr.eth.isValid(),
                                        {hdr.eth.dst, hdr.eth.src},
                                        hdr.eth.etype, HashAlgorithm.csum16);
  }
}
control MyIngress(inout headers_t hdr, inout meta_t meta,
                  inout standard_metadata_t sm) {
  apply {
    if (meta.checksum_err == 1) {
      mark_to_drop(sm);
    }
  }
}
control MyEgress(inout headers_t h, inout meta_t meta,
                 inout standard_metadata_t sm) { apply { } }
control MyCompute(inout headers_t hdr, inout meta_t meta) { apply { } }
control MyDeparser(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); }
}
V1Switch(MyParser(), MyVerify(), MyIngress(), MyEgress(), MyCompute(), MyDeparser()) main;
|}

(** A multi-protocol parser with select, masks, and an LPM router. *)
let lpm_router =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header vlan_t { bit<3> pcp; bit<1> cfi; bit<12> vid; bit<16> etype; }
header ipv4_t {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> total_len;
  bit<16> identification; bit<3> flags; bit<13> frag_offset;
  bit<8> ttl; bit<8> protocol; bit<16> hdr_checksum;
  bit<32> src_addr; bit<32> dst_addr;
}
struct headers_t { ethernet_t eth; vlan_t vlan; ipv4_t ipv4; }
struct meta_t { bit<1> routed; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x8100 &&& 0xEFFF : parse_vlan;
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_vlan {
    pkt.extract(hdr.vlan);
    transition select(hdr.vlan.etype) {
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 {
    pkt.extract(hdr.ipv4);
    transition accept;
  }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  action route(bit<9> port, bit<48> dmac) {
    sm.egress_spec = port;
    hdr.eth.dst = dmac;
    hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    meta.routed = 1;
  }
  action toss() { mark_to_drop(sm); }
  table rib {
    key = { hdr.ipv4.dst_addr : lpm @name("dst"); }
    actions = { route; toss; }
    default_action = toss();
  }
  apply {
    if (hdr.ipv4.isValid()) {
      if (hdr.ipv4.ttl == 0) {
        mark_to_drop(sm);
      } else {
        rib.apply();
      }
    } else {
      mark_to_drop(sm);
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) {
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.vlan);
    pkt.emit(hdr.ipv4);
  }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** Ternary ACL with constant entries and priorities. *)
let ternary_acl =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<2> verdict; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  action allow() { meta.verdict = 1; sm.egress_spec = 1; }
  action deny() { meta.verdict = 2; mark_to_drop(sm); }
  table acl {
    key = { hdr.eth.etype : ternary @name("etype"); }
    actions = { allow; deny; }
    const entries = {
      (0x0800 &&& 0xFFFF) : allow();
      @priority(1) (0x0806 &&& 0xFFFF) : deny();
      (0x0800 &&& 0x0F00) : deny();
    }
    default_action = allow();
  }
  apply { acl.apply(); }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** switch on action_run (exercises the P4C-7 fault class). *)
let switch_action_run =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<8> class; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  action classify_a() { meta.class = 1; }
  action classify_b() { meta.class = 2; }
  table classifier {
    key = { hdr.eth.etype : exact @name("etype"); }
    actions = { classify_a; classify_b; }
    default_action = classify_a();
  }
  apply {
    switch (classifier.apply().action_run) {
      classify_a: { sm.egress_spec = 1; hdr.eth.src = 0x0000000000AA; }
      classify_b: { sm.egress_spec = 2; hdr.eth.src = 0x0000000000BB; }
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** MPLS label stack with push/pop and bounded parser loop. *)
let mpls_stack =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header mpls_t { bit<20> label; bit<3> tc; bit<1> bos; bit<8> ttl; }
struct headers_t { ethernet_t eth; mpls_t[3] mpls; }
struct meta_t { bit<8> depth; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x8847 : parse_mpls;
      default : accept;
    }
  }
  state parse_mpls {
    pkt.extract(hdr.mpls.next);
    transition select(hdr.mpls.last.bos) {
      0 : parse_mpls;
      1 : accept;
    }
  }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  action pop_label() { hdr.mpls.pop_front(1); sm.egress_spec = 2; }
  action fwd() { sm.egress_spec = 3; }
  table mpls_fib {
    key = { hdr.mpls[0].label : exact @name("label"); }
    actions = { pop_label; fwd; }
    default_action = fwd();
  }
  apply {
    if (hdr.mpls[0].isValid()) {
      mpls_fib.apply();
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) {
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.mpls);
  }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** Register state machine: reads and writes a register by constant
    index. *)
let register_program =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<32> seen; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  register<bit<32>>(16) flows;
  apply {
    flows.read(meta.seen, 3);
    flows.write(3, meta.seen + 1);
    if (meta.seen == 0) {
      sm.egress_spec = 7;
    } else {
      sm.egress_spec = 8;
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** IPv4 checksum update (concolic + update_checksum). *)
let ipv4_checksum =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header ipv4_t {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> total_len;
  bit<16> identification; bit<3> flags; bit<13> frag_offset;
  bit<8> ttl; bit<8> protocol; bit<16> hdr_checksum;
  bit<32> src_addr; bit<32> dst_addr;
}
struct headers_t { ethernet_t eth; ipv4_t ipv4; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    if (hdr.ipv4.isValid()) {
      hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
      sm.egress_spec = 2;
    } else {
      mark_to_drop(sm);
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) {
  apply {
    update_checksum(hdr.ipv4.isValid(),
                    {hdr.ipv4.version, hdr.ipv4.ihl, hdr.ipv4.diffserv,
                     hdr.ipv4.total_len, hdr.ipv4.identification,
                     hdr.ipv4.flags, hdr.ipv4.frag_offset, hdr.ipv4.ttl,
                     hdr.ipv4.protocol, hdr.ipv4.src_addr, hdr.ipv4.dst_addr},
                    hdr.ipv4.hdr_checksum, HashAlgorithm.csum16);
  }
}
control D(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); pkt.emit(hdr.ipv4); }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** eBPF filter (§6.1.3). *)
let ebpf_filter =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header ipv4_t {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> total_len;
  bit<16> identification; bit<3> flags; bit<13> frag_offset;
  bit<8> ttl; bit<8> protocol; bit<16> hdr_checksum;
  bit<32> src_addr; bit<32> dst_addr;
}
struct headers_t { ethernet_t eth; ipv4_t ipv4; }

parser prs(packet_in pkt, out headers_t hdr) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}
control pipe(inout headers_t hdr, out bool pass) {
  apply {
    if (hdr.ipv4.isValid() && hdr.ipv4.protocol == 6) {
      pass = true;
    } else {
      pass = false;
    }
  }
}
ebpfFilter(prs(), pipe()) main;
|}

(** TNA two-pipe L2 switch (§6.1.2). *)
let tna_basic =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<8> scratch; }

parser IgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out ingress_intrinsic_metadata_t ig_intr_md) {
  state start { pkt.extract(ig_intr_md); transition parse_eth; }
  state parse_eth { pkt.extract(hdr.eth); transition accept; }
}
control Ig(inout headers_t hdr, inout meta_t md,
           in ingress_intrinsic_metadata_t ig_intr_md,
           in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
           inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
           inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
  action fwd(bit<9> port) { ig_tm_md.ucast_egress_port = port; }
  action drop() { ig_dprsr_md.drop_ctl = 1; }
  table l2 {
    key = { hdr.eth.dst : exact @name("dst"); }
    actions = { fwd; drop; }
    default_action = drop();
  }
  apply { l2.apply(); }
}
control IgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
  apply { pkt.emit(hdr.eth); }
}
parser EgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out egress_intrinsic_metadata_t eg_intr_md) {
  state start {
    pkt.extract(eg_intr_md);
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control Eg(inout headers_t hdr, inout meta_t md,
           in egress_intrinsic_metadata_t eg_intr_md,
           in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
           inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
           inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
  apply { hdr.eth.src = 0xC0FFEE000001; }
}
control EgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
  apply { pkt.emit(hdr.eth); }
}
Switch(Pipeline(IgParser(), Ig(), IgDeparser(), EgParser(), Eg(), EgDeparser())) main;
|}

(** v1model recirculation (Fig. 4/5 control flow). *)
let recirculate_program =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<8> rounds; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    if (hdr.eth.etype == 0x1234 && sm.instance_type == 0) {
      hdr.eth.etype = 0x5678;
      sm.egress_spec = 5;
    } else {
      sm.egress_spec = 6;
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    if (hdr.eth.etype == 0x5678) {
      recirculate_preserving_field_list(0);
      hdr.eth.etype = 0x9999;
    }
  }
}
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** Table key without a [@name] annotation: its control-plane name is
    the l-value path ("hdr.eth.etype"), the trigger for the P4C-1
    fault class. *)
let expr_key =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  action fwd(bit<9> p) { sm.egress_spec = p; }
  action toss() { mark_to_drop(sm); }
  table t {
    key = { hdr.eth.etype : exact; }
    actions = { fwd; toss; }
    default_action = toss();
  }
  apply { t.apply(); }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** Parser using [advance] (the P4C-2 fault class trigger). *)
let advance_prog =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header tag_t { bit<32> tag; }
struct headers_t { ethernet_t eth; tag_t tag; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0xAAAA : skip_then_tag;
      default : accept;
    }
  }
  state skip_then_tag {
    pkt.advance(32);
    pkt.extract(hdr.tag);
    transition accept;
  }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    if (hdr.tag.isValid()) {
      sm.egress_spec = 4;
    } else {
      sm.egress_spec = 5;
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); pkt.emit(hdr.tag); }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** Shift-heavy rewriting (wrong-shift-direction fault class). *)
let shift_prog =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    hdr.eth.src = hdr.eth.src << 4;
    hdr.eth.etype = hdr.eth.etype >> 2;
    sm.egress_spec = 3;
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** Header union with emit (P4C-6 fault class trigger). *)
let union_prog =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header small_t { bit<8> v; }
header big_t { bit<16> v; }
header_union tlv_t { small_t small; big_t big; }
struct headers_t { ethernet_t eth; tlv_t tlv; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0001 : parse_small;
      0x0002 : parse_big;
      default : accept;
    }
  }
  state parse_small { pkt.extract(hdr.tlv.small); transition accept; }
  state parse_big { pkt.extract(hdr.tlv.big); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply { sm.egress_spec = 6; }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); pkt.emit(hdr.tlv); }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** assert/assume primitives (the BMv2 assert extern, Tbl. 6). *)
let assert_prog =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    assume(hdr.eth.isValid());
    sm.egress_spec = 9;
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** A user metadata field shadowing a standard-metadata member (the
    P4C-8 duplicate-member fault class trigger). *)
let dup_member =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<3> priority; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    meta.priority = 1;
    sm.egress_spec = 2;
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}



(** A feature-dense TNA program used by the Tofino-side mutation
    campaign (Tbl. 2): intrinsic-metadata extraction, an MPLS-style
    stack with a bounded parser loop, [advance], a header union, a
    priority-ordered ternary ACL with out-of-mask entry values, a
    Checksum extern, slice writes, wide action data, an observable
    default action, assert/assume, and a multi-emit deparser. *)
let tna_kitchen =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header mpls_t { bit<20> label; bit<3> tc; bit<1> bos; bit<8> ttl; }
header tag_t { bit<32> t; }
header pay_t { bit<16> body; bit<16> csum; }
header small_t { bit<8> v; }
header big_t { bit<16> v; }
header_union tlv_t { small_t small; big_t big; }
struct headers_t { ethernet_t eth; mpls_t[2] mpls; tag_t tag; pay_t pay; tlv_t tlv; }
struct meta_t { bit<5> qid; bit<8> class; }

parser IgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out ingress_intrinsic_metadata_t ig_intr_md) {
  state start {
    pkt.extract(ig_intr_md);
    transition parse_eth;
  }
  state parse_eth {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x8847 : parse_mpls;
      0xAAAA : parse_tag;
      default : accept;
    }
  }
  state parse_mpls {
    pkt.extract(hdr.mpls.next);
    transition select(hdr.mpls.last.bos) {
      0 : parse_mpls;
      1 : parse_pay;
    }
  }
  state parse_tag {
    pkt.advance(16);
    pkt.extract(hdr.tag);
    transition accept;
  }
  state parse_pay {
    pkt.extract(hdr.pay);
    transition accept;
  }
}
control Ig(inout headers_t hdr, inout meta_t md,
           in ingress_intrinsic_metadata_t ig_intr_md,
           in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
           inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
           inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
  Checksum() ck;
  action mark(bit<8> v) { hdr.eth.src[7:0] = v; }
  action toss() { ig_dprsr_md.drop_ctl = 1; }
  table acl {
    key = { hdr.eth.etype : ternary @name("etype"); }
    actions = { mark; toss; }
    const entries = {
      @priority(2) (0x0812 &&& 0xFF00) : toss();
      @priority(1) (0x0806 &&& 0xFFFF) : mark(1);
      (0x0812 &&& 0xFF00) : mark(2);
    }
    default_action = mark(0xEE);
  }
  action route(bit<32> dst, bit<9> port) {
    hdr.eth.dst[47:16] = dst;
    ig_tm_md.ucast_egress_port = port;
  }
  action unrouted() { }
  table l2 {
    key = { hdr.eth.dst : exact; }
    actions = { route; unrouted; }
    default_action = unrouted();
  }
  apply {
    assume(hdr.eth.isValid());
    acl.apply();
    l2.apply();
    if (hdr.pay.isValid()) {
      hdr.pay.csum = ck.update({hdr.pay.body});
    }
  }
}
control IgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.mpls);
    pkt.emit(hdr.tag);
    pkt.emit(hdr.pay);
    pkt.emit(hdr.tlv);
  }
}
parser EgParser(packet_in pkt, out headers_t hdr, out meta_t md,
                out egress_intrinsic_metadata_t eg_intr_md) {
  state start {
    pkt.extract(eg_intr_md);
    pkt.extract(hdr.eth);
    transition accept;
  }
}
control Eg(inout headers_t hdr, inout meta_t md,
           in egress_intrinsic_metadata_t eg_intr_md,
           in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
           inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
           inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
  apply { }
}
control EgDeparser(packet_out pkt, inout headers_t hdr, in meta_t md,
                   in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
  apply { pkt.emit(hdr.eth); }
}
Switch(Pipeline(IgParser(), Ig(), IgDeparser(), EgParser(), Eg(), EgDeparser())) main;
|}

(** IPv4 with options: two-argument (varbit) extract whose length is a
    dynamic expression over the parsed IHL — the construct behind the
    paper's P4C-2 bug. *)
let ipv4_options =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header ipv4_opt_t {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> total_len;
  bit<16> identification; bit<3> flags; bit<13> frag_offset;
  bit<8> ttl; bit<8> protocol; bit<16> hdr_checksum;
  bit<32> src_addr; bit<32> dst_addr;
  varbit<320> options;
}
struct headers_t { ethernet_t eth; ipv4_opt_t ipv4; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 {
    pkt.extract(hdr.ipv4, (bit<32>)(((bit<16>)hdr.eth.src[3:0]) * 32));
    transition accept;
  }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    if (hdr.ipv4.isValid()) {
      sm.egress_spec = 4;
    } else {
      sm.egress_spec = 5;
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); pkt.emit(hdr.ipv4); }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}


(** Parser value set: the select case is driven by control-plane
    membership (paper Â§6, "paths dependent on parser value sets"). *)
let value_set_prog =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header tunnel_t { bit<32> id; }
struct headers_t { ethernet_t eth; tunnel_t tun; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  value_set<bit<16>>(4) tunnel_types;
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      tunnel_types : parse_tunnel;
      0x0800 : accept;
      default : accept;
    }
  }
  state parse_tunnel { pkt.extract(hdr.tun); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    if (hdr.tun.isValid()) {
      sm.egress_spec = 2;
    } else {
      sm.egress_spec = 3;
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); pkt.emit(hdr.tun); }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}


(** Lookahead in select keys and assignments, including the subtle
    path where a 16-bit peek succeeds but the 32-bit extract that
    follows runs out of packet. *)
let lookahead_prog =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
header vtag_t { bit<16> kind; bit<16> v; }
struct headers_t { ethernet_t eth; vtag_t vtag; }
struct meta_t { bit<16> peeked; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(pkt.lookahead<bit<16>>()) {
      0xC0DE : parse_vtag;
      default : accept;
    }
  }
  state parse_vtag {
    meta.peeked = pkt.lookahead<bit<16>>();
    pkt.extract(hdr.vtag);
    transition accept;
  }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    if (hdr.vtag.isValid() && meta.peeked == 0xC0DE) {
      sm.egress_spec = 2;
    } else {
      sm.egress_spec = 3;
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.eth); pkt.emit(hdr.vtag); }
}
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}


(** v1model clone: a copy of the deparsed packet is mirrored to the
    clone session's port (Â§6.1.1 â "clone requires P4Testgen's
    entire toolbox"). *)
let clone_prog =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    sm.egress_spec = 1;
    if (hdr.eth.etype == 0x9999) {
      clone(CloneType.I2E, 32w5);
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** v1model multicast: a non-zero mcast_grp replicates the packet to
    the (control-plane configured) group's ports. *)
let multicast_prog =
  {|
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etype; }
struct headers_t { ethernet_t eth; }
struct meta_t { bit<1> unused; }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.eth); transition accept; }
}
control V(inout headers_t hdr, inout meta_t meta) { apply { } }
control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    if (hdr.eth.dst == 0xFFFFFFFFFFFF) {
      sm.mcast_grp = 7;
    } else {
      sm.egress_spec = 1;
    }
  }
}
control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }
control D(packet_out pkt, in headers_t hdr) { apply { pkt.emit(hdr.eth); } }
V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

(** All v1model corpus programs that the concrete simulator can also
    execute (used by the validation experiment). *)
(* An unguarded read of a conditionally-parsed header flows into an
   emitted field: on the short-packet path hdr.ipv4 is invalid, so the
   read is undefined.  The oracle taints it (the etype bits become
   don't-cares), and BMv2 reads zero — but a model whose invalid reads
   return stale garbage (TOF-12, Invalid_read_garbage) emits different
   bits.  Exposing that fault needs the pristine-vs-faulted
   differential check: the taint mask hides it from plain
   expectation matching. *)
let stale_read_prog =
  {|
header eth_t { bit<48> dst; bit<48> src; bit<16> etype; }
header ipv4_t { bit<8> ttl; bit<16> hdr_checksum; }
struct headers_t { eth_t eth; ipv4_t ipv4; }
struct meta_t { }

parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
         inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.eth);
    transition select(hdr.eth.etype) {
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}

control V(inout headers_t hdr, inout meta_t meta) { apply { } }

control I(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) {
  apply {
    hdr.eth.etype = hdr.ipv4.hdr_checksum;
    sm.egress_spec = 2;
  }
}

control E(inout headers_t hdr, inout meta_t meta, inout standard_metadata_t sm) { apply { } }
control C(inout headers_t hdr, inout meta_t meta) { apply { } }

control D(packet_out pkt, in headers_t hdr) {
  apply {
    pkt.emit(hdr.eth);
    pkt.emit(hdr.ipv4);
  }
}

V1Switch(P(), V(), I(), E(), C(), D()) main;
|}

let v1model_validatable =
  [
    ("fig1a", fig1a);
    ("fig1b", fig1b);
    ("lpm_router", lpm_router);
    ("ternary_acl", ternary_acl);
    ("switch_action_run", switch_action_run);
    ("mpls_stack", mpls_stack);
    ("register_program", register_program);
    ("ipv4_checksum", ipv4_checksum);
    ("expr_key", expr_key);
    ("advance_prog", advance_prog);
    ("shift_prog", shift_prog);
    ("union_prog", union_prog);
    ("assert_prog", assert_prog);
    ("dup_member", dup_member);
    ("ipv4_options", ipv4_options);
    ("value_set_prog", value_set_prog);
    ("lookahead_prog", lookahead_prog);
    ("recirculate", recirculate_program);
    ("clone_prog", clone_prog);
    ("multicast_prog", multicast_prog);
    ("stale_read_prog", stale_read_prog);
  ]

let all =
  v1model_validatable
  @ [ ("ebpf_filter", ebpf_filter); ("tna_basic", tna_basic) ]
