(* Exact LRU over a hashtable with monotone use-stamps.

   Capacities here are small (a handful of prepared oracles, each
   worth hundreds of kilobytes of AST and typing tables), so eviction
   scans for the minimum stamp instead of maintaining an intrusive
   list — O(n) on a dozen entries is noise next to one [Oracle.prepare]
   it saves. *)

type 'a entry = { mutable stamp : int; value : 'a }

type 'a t = {
  cap : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int;  (* next use-stamp; strictly increasing *)
}

let create ~cap =
  if cap < 1 then invalid_arg "Lru.create: cap must be >= 1";
  { cap; tbl = Hashtbl.create (2 * cap); clock = 0 }

let tick t =
  let s = t.clock in
  t.clock <- s + 1;
  s

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some e ->
      e.stamp <- tick t;
      Some e.value

let mem t k = Hashtbl.mem t.tbl k

let lru_binding t =
  Hashtbl.fold
    (fun k e best ->
      match best with
      | Some (_, b) when b.stamp <= e.stamp -> best
      | _ -> Some (k, e))
    t.tbl None

let put t k v =
  Hashtbl.replace t.tbl k { stamp = tick t; value = v };
  if Hashtbl.length t.tbl <= t.cap then None
  else
    match lru_binding t with
    | Some (victim, e) ->
        Hashtbl.remove t.tbl victim;
        Some (victim, e.value)
    | None -> None

let remove t k = Hashtbl.remove t.tbl k
let clear t = Hashtbl.reset t.tbl
let length t = Hashtbl.length t.tbl
let capacity t = t.cap

let keys t =
  let all = Hashtbl.fold (fun k e acc -> (e.stamp, k) :: acc) t.tbl [] in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare b a) all)
