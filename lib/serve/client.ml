(* Thin client for the serve daemon: one connection, one request, one
   streamed response.  Used by the [p4testgen client] subcommand, the
   serve bench and the serve tests; external clients only need the
   framing in [Wire]. *)

let connect (ep : Wire.endpoint) : Unix.file_descr =
  let domain =
    match ep with Wire.Unix_sock _ -> Unix.PF_UNIX | Wire.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Wire.sockaddr_of_endpoint ep)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* Send [rq] and read the response stream until [End] (or EOF).
   [on_event] fires on every frame as it arrives — streaming consumers
   (progress display, the bench's first-test latency) hook in here; the
   full event list is also returned for convenience. *)
let request ?(on_event = fun (_ : Wire.event) -> ()) (ep : Wire.endpoint)
    (rq : Wire.request) : (Wire.event list, string) result =
  match connect ep with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("connect: " ^ Unix.error_message e)
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          try
            Wire.write_frame fd (Wire.encode_request rq);
            let rec loop acc =
              match Wire.read_frame fd with
              | None -> Ok (List.rev acc)  (* server closed without [End] *)
              | Some payload -> (
                  match Wire.decode_event payload with
                  | Error msg -> Error ("bad response frame: " ^ msg)
                  | Ok ev -> (
                      on_event ev;
                      match ev with
                      | Wire.End -> Ok (List.rev (ev :: acc))
                      | _ -> loop (ev :: acc)))
            in
            loop []
          with
          | Wire.Protocol_error msg -> Error msg
          | Unix.Unix_error (e, fn, _) -> Error (fn ^ ": " ^ Unix.error_message e))

(* The first error frame of a response, if any. *)
let find_error events =
  List.find_map
    (function Wire.Error (kind, msg) -> Some (kind, msg) | _ -> None)
    events

let find_summary events =
  List.find_map (function Wire.Summary kvs -> Some kvs | _ -> None) events

let summary_get kvs key = List.assoc_opt key kvs

(* Poll the daemon with pings until it answers — startup
   synchronisation for scripts and tests. *)
let wait_ready ?(attempts = 100) ?(delay = 0.05) (ep : Wire.endpoint) : bool =
  let rec go n =
    if n <= 0 then false
    else
      match request ep { Wire.default_request with Wire.rq_op = Wire.Ping } with
      | Ok evs
        when List.exists (function Wire.Okay _ -> true | _ -> false) evs ->
          true
      | _ ->
          Unix.sleepf delay;
          go (n - 1)
  in
  go attempts
