(* The oracle daemon: accept loop + executor domains around a
   fingerprint-keyed cache of prepared oracles.

   One connection carries one request and one streamed response (see
   [Wire]).  The accept loop never runs oracle work: it either enqueues
   the connection for an executor or rejects it with a `busy` frame
   when the queue is full.  Executor domains are paid for out of
   [Explore.Pool] — the same budget the frontier driver and the batch
   runner draw from — so a serving process never oversubscribes the
   host, whatever mix of per-request [path_jobs] the clients ask for.

   The cache holds [Oracle.prepared] values keyed by
   [Oracle.fingerprint].  A hit skips parsing, typing and the mid-end
   entirely; the request then explores a fresh deterministic replica
   ([Oracle.explore_prepared]), so its test set is bit-identical to a
   cold run of the same source with the same options.

   Shared mutable state (queue, cache, the serve.* metrics registry)
   is guarded by one mutex: every critical section is queue bookkeeping
   or a metric bump, never oracle work, so contention is noise next to
   a single solver call. *)

type config = {
  endpoint : Wire.endpoint;
  cache_slots : int;  (* prepared oracles kept warm *)
  workers : int;  (* executor domains wanted (pool may grant fewer) *)
  queue_cap : int;  (* admitted-but-unserved connections *)
  default_deadline_ms : int option;  (* per-request budget, from admission *)
}

let default_config =
  {
    endpoint = Wire.Unix_sock "p4testgen.sock";
    cache_slots = 8;
    workers = 2;
    queue_cap = 16;
    default_deadline_ms = None;
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  m : Mutex.t;
  cond : Condition.t;
  queue : (Unix.file_descr * float) Queue.t;  (* (conn, admission time) *)
  mutable stopping : bool;
  cache : Testgen.Oracle.prepared Lru.t;
  sreg : Obs.Registry.t;  (* serve.* metrics; touch under [m] only *)
  mutable executors : unit Domain.t list;
  mutable acceptor : unit Domain.t option;
  mutable pool_tokens : int;
  listen_closed : bool Atomic.t;
}

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* all sreg traffic goes through these, under the server mutex *)
let count t name =
  with_lock t (fun () -> Obs.Counter.incr (Obs.Registry.counter t.sreg name))

let timer_add t name secs =
  with_lock t (fun () -> Obs.Timer.add (Obs.Registry.timer t.sreg name) secs)

let set_queue_gauge_locked t =
  Obs.Gauge.set
    (Obs.Registry.gauge t.sreg "serve.queue_depth")
    (Queue.length t.queue)

let snapshot t = with_lock t (fun () -> Obs.Registry.snapshot t.sreg)

(* ------------------------------------------------------------------ *)
(* Request handling *)

let strategy_of_string = function
  | "dfs" -> Some Testgen.Explore.Dfs
  | "rnd" -> Some Testgen.Explore.Rnd
  | "cov" -> Some Testgen.Explore.Cov
  | _ -> None

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* a dead client mid-stream is that client's problem, not the server's *)
let send fd ev = try Wire.write_event fd ev with _ -> ()

let fail fd kind msg =
  send fd (Wire.Error (kind, msg));
  send fd Wire.End

let bool_str b = if b then "true" else "false"

let handle_generate t fd ~admitted (rq : Wire.request) =
  let module O = Testgen.Oracle in
  let t0 = Obs.Clock.now () in
  match Targets.Registry.find rq.rq_arch with
  | None -> fail fd "protocol" ("unknown target " ^ rq.rq_arch)
  | Some target -> (
      match strategy_of_string rq.rq_strategy with
      | None -> fail fd "protocol" ("unknown strategy " ^ rq.rq_strategy)
      | Some strategy -> (
          let key =
            match rq.rq_key with
            | Some k -> Ok k
            | None -> (
                match rq.rq_source with
                | None ->
                    Error
                      (`Protocol "generate needs a source body or a fingerprint")
                | Some src -> (
                    match O.fingerprint ~arch:rq.rq_arch src with
                    | Ok k -> Ok k
                    | Error e -> Error (`Prepare e)))
          in
          match key with
          | Error (`Protocol msg) -> fail fd "protocol" msg
          | Error (`Prepare e) ->
              fail fd (O.prepare_error_kind e) (O.prepare_error_message e)
          | Ok key -> (
              let rreg = Obs.Registry.create () in
              (* baseline of the daemon-wide serve.* registry: the
                 response reports this request's delta, not counters
                 accumulated since the daemon started *)
              let s0 = snapshot t in
              let cached = with_lock t (fun () -> Lru.find t.cache key) in
              let prepared =
                match cached with
                | Some p ->
                    count t "serve.cache_hits";
                    Ok (p, true, 0.0)
                | None -> (
                    count t "serve.cache_misses";
                    match rq.rq_source with
                    | None -> Error (`Unknown key)
                    | Some src -> (
                        let p0 = Obs.Clock.now () in
                        (* prepare outside the lock: concurrent misses may
                           duplicate work, but never serialize on it *)
                        match O.prepare_result ~obs:rreg target src with
                        | Error e -> Error (`Prepare e)
                        | Ok p ->
                            let dt = Obs.Clock.now () -. p0 in
                            timer_add t "serve.prepare_time" dt;
                            with_lock t (fun () ->
                                match Lru.put t.cache key p with
                                | None -> ()
                                | Some _ ->
                                    Obs.Counter.incr
                                      (Obs.Registry.counter t.sreg
                                         "serve.cache_evictions"));
                            Ok (p, false, dt)))
              in
              match prepared with
              | Error (`Unknown key) ->
                  count t "serve.errors";
                  fail fd "unknown-fingerprint"
                    ("no cached oracle for " ^ key ^ "; resend with the source")
              | Error (`Prepare e) ->
                  count t "serve.errors";
                  fail fd (O.prepare_error_kind e) (O.prepare_error_message e)
              | Ok (prepared, cache_hit, prep_seconds) -> (
                  let opts =
                    {
                      Testgen.Runtime.default_options with
                      seed = rq.rq_seed;
                      seq_packets = rq.rq_seq_packets;
                    }
                  in
                  let deadline_ms =
                    match rq.rq_deadline_ms with
                    | Some _ as d -> d
                    | None -> t.cfg.default_deadline_ms
                  in
                  let deadline =
                    Option.map
                      (fun ms -> admitted +. (float_of_int ms /. 1000.))
                      deadline_ms
                  in
                  let nstreamed = ref 0 in
                  let on_test spec =
                    incr nstreamed;
                    send fd
                      (Wire.Test (!nstreamed, Testgen.Testspec.to_string spec))
                  in
                  let config =
                    {
                      Testgen.Explore.default_config with
                      max_tests = rq.rq_max_tests;
                      max_paths = rq.rq_max_paths;
                      strategy;
                      path_jobs = rq.rq_path_jobs;
                      on_test = Some on_test;
                      deadline;
                    }
                  in
                  match O.explore_prepared ~opts ~config ~obs:rreg prepared with
                  | exception e ->
                      count t "serve.errors";
                      fail fd "exec" (Printexc.to_string e)
                  | run ->
                      let result = run.O.result in
                      let tests = result.Testgen.Explore.tests in
                      (match rq.rq_backend with
                      | None -> ()
                      | Some be_name -> (
                          match Backends.Registry.find be_name with
                          | None ->
                              send fd
                                (Wire.Error
                                   ("protocol", "unknown back end " ^ be_name))
                          | Some be ->
                              send fd
                                (Wire.File
                                   ( be_name,
                                     Backends.Registry.emit_observed ~obs:rreg
                                       be tests ))));
                      let cov = O.coverage_report run in
                      let wall = Obs.Clock.now () -. t0 in
                      let timed_out =
                        match deadline with
                        | Some d -> Obs.Clock.now () > d
                        | None -> false
                      in
                      send fd
                        (Wire.Summary
                           [
                             ("tests", string_of_int (List.length tests));
                             ( "paths",
                               string_of_int
                                 result.Testgen.Explore.stats
                                   .Testgen.Explore.paths );
                             ( "coverage_pct",
                               Printf.sprintf "%.2f" cov.O.percentage );
                             ("cache_hit", bool_str cache_hit);
                             ("prep_seconds", Printf.sprintf "%.6f" prep_seconds);
                             ("wall_seconds", Printf.sprintf "%.6f" wall);
                             ("fingerprint", key);
                             ("timed_out", bool_str timed_out);
                           ]);
                      send fd
                        (Wire.Obs
                           (Obs.Snapshot.to_json
                              (Obs.Snapshot.merge
                                 (Obs.Registry.snapshot rreg)
                                 (Obs.Snapshot.diff (snapshot t) s0))));
                      send fd Wire.End))))

let close_listener t =
  if not (Atomic.exchange t.listen_closed true) then close_quiet t.listen_fd

let begin_shutdown t =
  with_lock t (fun () ->
      t.stopping <- true;
      Condition.broadcast t.cond);
  (* a blocked accept(2) is not reliably interrupted by another domain
     closing the listener, so poke the acceptor awake with a throwaway
     self-connection; it re-checks [stopping] per accepted connection *)
  try
    let domain =
      match t.cfg.endpoint with
      | Wire.Unix_sock _ -> Unix.PF_UNIX
      | Wire.Tcp _ -> Unix.PF_INET
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> close_quiet fd)
      (fun () -> Unix.connect fd (Wire.sockaddr_of_endpoint t.cfg.endpoint))
  with Unix.Unix_error _ -> close_listener t

let handle_connection t (fd, admitted) =
  let module O = Testgen.Oracle in
  count t "serve.requests";
  let finish () = close_quiet fd in
  Fun.protect ~finally:finish (fun () ->
      match
        let r0 = Obs.Clock.now () in
        Fun.protect
          ~finally:(fun () -> timer_add t "serve.request_time" (Obs.Clock.now () -. r0))
          (fun () ->
            match Wire.read_frame fd with
            | None -> ()
            | Some payload -> (
                match Wire.decode_request payload with
                | Error msg -> fail fd "protocol" msg
                | Ok rq -> (
                    match rq.Wire.rq_op with
                    | Wire.Ping ->
                        send fd (Wire.Okay "pong");
                        send fd Wire.End
                    | Wire.Flush ->
                        with_lock t (fun () -> Lru.clear t.cache);
                        count t "serve.flushes";
                        send fd (Wire.Okay "flushed");
                        send fd Wire.End
                    | Wire.Shutdown ->
                        send fd (Wire.Okay "stopping");
                        send fd Wire.End;
                        begin_shutdown t
                    | Wire.Fingerprint -> (
                        match rq.Wire.rq_source with
                        | None -> fail fd "protocol" "fingerprint needs a source body"
                        | Some src -> (
                            match O.fingerprint ~arch:rq.Wire.rq_arch src with
                            | Ok key ->
                                send fd (Wire.Okay key);
                                send fd Wire.End
                            | Error e ->
                                fail fd (O.prepare_error_kind e)
                                  (O.prepare_error_message e)))
                    | Wire.Generate -> handle_generate t fd ~admitted rq)))
      with
      | () -> ()
      | exception Wire.Protocol_error _ -> ()  (* client went away *)
      | exception Unix.Unix_error _ -> ()
      | exception e ->
          count t "serve.errors";
          fail fd "exec" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Executors and the accept loop *)

let executor_loop t =
  let rec next () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.cond t.m
    done;
    if Queue.is_empty t.queue then begin
      Mutex.unlock t.m;
      ()  (* stopping with a drained queue *)
    end
    else begin
      let conn = Queue.pop t.queue in
      set_queue_gauge_locked t;
      Mutex.unlock t.m;
      handle_connection t conn;
      next ()
    end
  in
  next ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()  (* listener closed: shutting down *)
    | fd, _ ->
        let admitted = Obs.Clock.now () in
        let enqueued =
          with_lock t (fun () ->
              if t.stopping then `Stopping
              else if Queue.length t.queue >= t.cfg.queue_cap then begin
                Obs.Counter.incr
                  (Obs.Registry.counter t.sreg "serve.busy_rejections");
                `Busy
              end
              else begin
                Queue.push (fd, admitted) t.queue;
                set_queue_gauge_locked t;
                Condition.signal t.cond;
                `Queued
              end)
        in
        (match enqueued with
        | `Queued -> ()
        | `Busy ->
            fail fd "busy" "request queue full, retry later";
            close_quiet fd
        | `Stopping ->
            fail fd "shutdown" "server is stopping";
            close_quiet fd);
        if with_lock t (fun () -> t.stopping) then () else loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let listen_socket (ep : Wire.endpoint) =
  let domain, addr =
    match ep with
    | Wire.Unix_sock path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Wire.Tcp _ -> (Unix.PF_INET, Wire.sockaddr_of_endpoint ep)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.SO_REUSEADDR true
   with Unix.Unix_error _ -> ());
  Unix.bind fd addr;
  Unix.listen fd 64;
  fd

let ignore_sigpipe () =
  match Sys.os_type with
  | "Unix" -> (
      try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ()

let create (cfg : config) : t =
  ignore_sigpipe ();
  let listen_fd = listen_socket cfg.endpoint in
  let t =
    {
      cfg;
      listen_fd;
      m = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      cache = Lru.create ~cap:(max 1 cfg.cache_slots);
      sreg = Obs.Registry.create ();
      executors = [];
      acceptor = None;
      pool_tokens = 0;
      listen_closed = Atomic.make false;
    }
  in
  (* intern the full metric set so a snapshot of an idle server already
     names everything the smoke tests grep for *)
  List.iter
    (fun n -> ignore (Obs.Registry.counter t.sreg n))
    [
      "serve.requests"; "serve.cache_hits"; "serve.cache_misses";
      "serve.cache_evictions"; "serve.busy_rejections"; "serve.errors";
      "serve.flushes";
    ];
  ignore (Obs.Registry.gauge t.sreg "serve.queue_depth");
  ignore (Obs.Registry.timer t.sreg "serve.prepare_time");
  ignore (Obs.Registry.timer t.sreg "serve.request_time");
  let wanted = max 1 cfg.workers in
  (* executor domains draw on the shared exploration budget; at least
     one executor runs even when the pool is exhausted, or the daemon
     could not serve at all *)
  let granted = Testgen.Explore.Pool.acquire wanted in
  t.pool_tokens <- granted;
  let n = max 1 granted in
  t.executors <- List.init n (fun _ -> Domain.spawn (fun () -> executor_loop t));
  t

let join (t : t) =
  (match t.acceptor with Some d -> Domain.join d | None -> ());
  t.acceptor <- None;
  List.iter Domain.join t.executors;
  t.executors <- [];
  (* reject whatever was admitted but never served *)
  Queue.iter
    (fun (fd, _) ->
      fail fd "shutdown" "server is stopping";
      close_quiet fd)
    t.queue;
  Queue.clear t.queue;
  Testgen.Explore.Pool.release t.pool_tokens;
  t.pool_tokens <- 0;
  close_listener t;
  match t.cfg.endpoint with
  | Wire.Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Wire.Tcp _ -> ()

let start (cfg : config) : t =
  let t = create cfg in
  t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let stop (t : t) =
  begin_shutdown t;
  join t

(* blocking entry point for the CLI: serve until a shutdown request *)
let run (cfg : config) =
  let t = create cfg in
  accept_loop t;
  join t
