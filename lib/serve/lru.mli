(** A small string-keyed LRU cache — the prepared-oracle cache of the
    serve daemon keys {!Testgen.Oracle.prepared} values by program
    fingerprint with one of these.

    Not synchronized: the owner wraps operations in its own lock (the
    daemon holds its cache mutex around every call).  Recency is
    tracked with monotone use-stamps, so eviction order is exact LRU:
    [find] and [put] both count as a use. *)

type 'a t

val create : cap:int -> 'a t
(** A cache holding at most [cap] entries ([cap >= 1], or
    [Invalid_argument]). *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit marks the entry most-recently used. *)

val put : 'a t -> string -> 'a -> (string * 'a) option
(** Insert (or overwrite) the entry and mark it most-recently used.
    Returns the evicted least-recently-used binding when the insert
    pushed the cache over capacity. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency. *)

val remove : 'a t -> string -> unit
val clear : 'a t -> unit
val length : 'a t -> int
val capacity : 'a t -> int

val keys : 'a t -> string list
(** Most-recently-used first — the reverse of eviction order. *)
