(* The serve wire protocol: length-prefixed frames over a byte stream.

   Every frame is a 4-byte big-endian payload length followed by the
   payload.  Payloads are text: a header line, then (depending on the
   tag) `key value` lines and/or a raw body.  The framing is the only
   thing a client must implement exactly; the payloads are line
   oriented so `nc`-level scripting stays possible.

   Request (one frame, client -> server):

     p4tg1 <op>                     op = generate | fingerprint | ping
                                         | flush | shutdown
     <key> <value>                  zero or more option lines
     <blank line>
     <P4 source>                    optional body (rest of the frame)

   Response (a stream of frames, server -> client), first token tags
   the frame:

     test <n>      one accepted test, streamed as its path closes;
                   body = the abstract testspec text
     file <be>     body = the rendered back-end file (when requested)
     summary       `key value` lines: tests, paths, coverage_pct,
                   cache_hit, prep_seconds, wall_seconds, fingerprint,
                   timed_out
     obs           body = the request's metric snapshot as JSON
     error <kind>  kind = parse | typecheck | exec | protocol | busy
                        | unknown-fingerprint | shutdown; body = message
     ok            body = op-specific payload (pong, the fingerprint,
                   ...)
     end           request complete; the server closes after it *)

exception Protocol_error of string

let max_frame = 64 * 1024 * 1024
(* a frame larger than this is a protocol error, not an allocation *)

(* ------------------------------------------------------------------ *)
(* Framing *)

let really_write fd (s : string) =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    let k = Unix.write_substring fd s !off (n - !off) in
    if k <= 0 then raise (Protocol_error "short write");
    off := !off + k
  done

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then raise (Protocol_error "frame too large");
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  really_write fd (Bytes.to_string hdr);
  really_write fd payload

(* [None] on a clean EOF at a frame boundary; raises mid-frame *)
let read_frame fd : string option =
  let really_read buf off len =
    let got = ref 0 in
    (try
       while !got < len do
         let k = Unix.read fd buf (off + !got) (len - !got) in
         if k = 0 then raise Exit;
         got := !got + k
       done
     with Exit -> ());
    !got
  in
  let hdr = Bytes.create 4 in
  match really_read hdr 0 4 with
  | 0 -> None
  | 4 ->
      let b i = Bytes.get_uint8 hdr i in
      let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if n > max_frame then raise (Protocol_error "frame too large");
      let payload = Bytes.create n in
      if really_read payload 0 n < n then
        raise (Protocol_error "truncated frame");
      Some (Bytes.to_string payload)
  | _ -> raise (Protocol_error "truncated frame header")

(* ------------------------------------------------------------------ *)
(* Requests *)

type op = Generate | Fingerprint | Ping | Flush | Shutdown

type request = {
  rq_op : op;
  rq_arch : string;
  rq_backend : string option;  (* also stream the rendered file *)
  rq_strategy : string;  (* dfs | rnd | cov *)
  rq_seed : int;
  rq_max_tests : int option;
  rq_max_paths : int option;
  rq_seq_packets : int;
  rq_path_jobs : int;
  rq_deadline_ms : int option;  (* measured from admission *)
  rq_key : string option;  (* probe by fingerprint, no source shipped *)
  rq_source : string option;
}

let default_request =
  {
    rq_op = Generate;
    rq_arch = "v1model";
    rq_backend = None;
    rq_strategy = "dfs";
    rq_seed = 1;
    rq_max_tests = None;
    rq_max_paths = None;
    rq_seq_packets = 1;
    rq_path_jobs = 0;
    rq_deadline_ms = None;
    rq_key = None;
    rq_source = None;
  }

let string_of_op = function
  | Generate -> "generate"
  | Fingerprint -> "fingerprint"
  | Ping -> "ping"
  | Flush -> "flush"
  | Shutdown -> "shutdown"

let op_of_string = function
  | "generate" -> Some Generate
  | "fingerprint" -> Some Fingerprint
  | "ping" -> Some Ping
  | "flush" -> Some Flush
  | "shutdown" -> Some Shutdown
  | _ -> None

(* split "key value..." at the first space; value may itself contain
   spaces *)
let split_kv line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) )

let encode_request (r : request) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b ("p4tg1 " ^ string_of_op r.rq_op ^ "\n");
  let kv k v = Buffer.add_string b (k ^ " " ^ v ^ "\n") in
  let kvo k = function Some v -> kv k v | None -> () in
  kv "arch" r.rq_arch;
  kvo "backend" r.rq_backend;
  kv "strategy" r.rq_strategy;
  kv "seed" (string_of_int r.rq_seed);
  kvo "max-tests" (Option.map string_of_int r.rq_max_tests);
  kvo "max-paths" (Option.map string_of_int r.rq_max_paths);
  kv "seq-packets" (string_of_int r.rq_seq_packets);
  kv "path-jobs" (string_of_int r.rq_path_jobs);
  kvo "deadline-ms" (Option.map string_of_int r.rq_deadline_ms);
  kvo "fingerprint" r.rq_key;
  Buffer.add_char b '\n';
  (match r.rq_source with Some s -> Buffer.add_string b s | None -> ());
  Buffer.contents b

let decode_request (payload : string) : (request, string) result =
  (* header section = lines up to the first blank line; body = the rest *)
  let body_at =
    let rec find i =
      match String.index_from_opt payload i '\n' with
      | None -> None
      | Some j ->
          if j + 1 <= String.length payload && j = i then Some (j + 1)
          else find (j + 1)
    in
    (* a blank line is a '\n' immediately following a '\n' (or a
       leading '\n'); [find] spots it by a line of width zero *)
    find 0
  in
  let header, body =
    match body_at with
    | Some i ->
        ( String.sub payload 0 (i - 1),
          Some (String.sub payload i (String.length payload - i)) )
    | None -> (payload, None)
  in
  match String.split_on_char '\n' header with
  | [] -> Error "empty request"
  | magic :: opts -> (
      match split_kv magic with
      | "p4tg1", opname -> (
          match op_of_string opname with
          | None -> Error ("unknown op " ^ opname)
          | Some op -> (
              let r =
                ref
                  {
                    default_request with
                    rq_op = op;
                    rq_source =
                      (match body with Some "" | None -> None | s -> s);
                  }
              in
              let bad = ref None in
              let int_of k v f =
                match int_of_string_opt v with
                | Some i -> f i
                | None -> bad := Some (Printf.sprintf "bad integer %s for %s" v k)
              in
              List.iter
                (fun line ->
                  if line <> "" then
                    let k, v = split_kv line in
                    match k with
                    | "arch" -> r := { !r with rq_arch = v }
                    | "backend" -> r := { !r with rq_backend = Some v }
                    | "strategy" -> r := { !r with rq_strategy = v }
                    | "seed" -> int_of k v (fun i -> r := { !r with rq_seed = i })
                    | "max-tests" ->
                        int_of k v (fun i -> r := { !r with rq_max_tests = Some i })
                    | "max-paths" ->
                        int_of k v (fun i -> r := { !r with rq_max_paths = Some i })
                    | "seq-packets" ->
                        int_of k v (fun i -> r := { !r with rq_seq_packets = i })
                    | "path-jobs" ->
                        int_of k v (fun i -> r := { !r with rq_path_jobs = i })
                    | "deadline-ms" ->
                        int_of k v (fun i ->
                            r := { !r with rq_deadline_ms = Some i })
                    | "fingerprint" -> r := { !r with rq_key = Some v }
                    | _ ->
                        (* unknown keys are ignored: old servers accept
                           new clients' hints *)
                        ())
                opts;
              match !bad with Some m -> Error m | None -> Ok !r))
      | _ -> Error "bad magic (expected p4tg1)")

(* ------------------------------------------------------------------ *)
(* Response events *)

type event =
  | Test of int * string  (* 1-based index, testspec text *)
  | File of string * string  (* back end name, rendered content *)
  | Summary of (string * string) list
  | Obs of string  (* metric snapshot, JSON *)
  | Error of string * string  (* kind, message *)
  | Okay of string
  | End

let encode_event : event -> string = function
  | Test (n, body) -> Printf.sprintf "test %d\n%s" n body
  | File (be, body) -> Printf.sprintf "file %s\n%s" be body
  | Summary kvs ->
      "summary\n"
      ^ String.concat "" (List.map (fun (k, v) -> k ^ " " ^ v ^ "\n") kvs)
  | Obs json -> "obs\n" ^ json
  | Error (kind, msg) -> Printf.sprintf "error %s\n%s" kind msg
  | Okay body -> "ok\n" ^ body
  | End -> "end\n"

let decode_event (payload : string) : (event, string) result =
  let head, body =
    match String.index_opt payload '\n' with
    | None -> (payload, "")
    | Some i ->
        ( String.sub payload 0 i,
          String.sub payload (i + 1) (String.length payload - i - 1) )
  in
  match split_kv head with
  | "test", n -> (
      match int_of_string_opt n with
      | Some n -> Ok (Test (n, body))
      | None -> Error ("bad test index " ^ n))
  | "file", be -> Ok (File (be, body))
  | "summary", _ ->
      Ok
        (Summary
           (List.filter_map
              (fun l -> if l = "" then None else Some (split_kv l))
              (String.split_on_char '\n' body)))
  | "obs", _ -> Ok (Obs body)
  | "error", kind -> Ok (Error (kind, body))
  | "ok", _ -> Ok (Okay body)
  | "end", _ -> Ok End
  | tag, _ -> Error ("unknown frame tag " ^ tag)

let write_event fd ev = write_frame fd (encode_event ev)

(* ------------------------------------------------------------------ *)
(* Endpoints — defined for callers via [Stdlib.result]; note the event
   type above shadows [Error], hence the qualified constructors here *)

type endpoint = Unix_sock of string | Tcp of string * int

let string_of_endpoint = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* "unix:PATH" | "tcp:HOST:PORT"; a bare string is a socket path, or
   HOST:PORT when the suffix parses as a port *)
let endpoint_of_string s : (endpoint, string) result =
  let tcp spec =
    match String.rindex_opt spec ':' with
    | None -> Stdlib.Error ("bad tcp endpoint " ^ spec ^ " (want HOST:PORT)")
    | Some i -> (
        let host = String.sub spec 0 i in
        let port = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
            Stdlib.Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Stdlib.Error ("bad port in endpoint " ^ spec))
  in
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Stdlib.Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    tcp (String.sub s 4 (String.length s - 4))
  else
    match tcp s with
    | Stdlib.Ok _ as e -> e
    | Stdlib.Error _ -> Stdlib.Ok (Unix_sock s)

let sockaddr_of_endpoint = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ -> Unix.inet_addr_loopback
      in
      Unix.ADDR_INET (addr, port)

