(* Telemetry: metric registries, hierarchical spans, trace export.

   A registry is single-domain mutable state, mirroring the ownership
   rule of term contexts: one run = one registry, merged as immutable
   snapshots by the batch driver.  This module is also the only place
   in the tree allowed to read the wall clock. *)

module Clock = struct
  let now () = Unix.gettimeofday ()
end

module Counter = struct
  type t = { mutable c : int }

  let incr t = t.c <- t.c + 1
  let add t n = t.c <- t.c + n
  let value t = t.c
end

module Gauge = struct
  type t = { mutable g : int }

  let set t n = t.g <- n
  let set_max t n = if n > t.g then t.g <- n
  let value t = t.g
end

module Timer = struct
  type t = { mutable s : float }

  let add t dt =
    if dt < 0.0 then invalid_arg "Obs.Timer.add: negative duration";
    t.s <- t.s +. dt

  let time t f =
    let t0 = Clock.now () in
    Fun.protect ~finally:(fun () -> t.s <- t.s +. (Clock.now () -. t0)) f

  let value t = t.s
end

module Snapshot = struct
  type value = Count of int | Level of int | Seconds of float

  (* name-sorted association list; small enough (tens of metrics) that
     list merges beat map overhead *)
  type t = (string * value) list

  let empty = []

  let combine name a b =
    match (a, b) with
    | Count x, Count y -> Count (x + y)
    | Level x, Level y -> Level (max x y)
    | Seconds x, Seconds y -> Seconds (x +. y)
    | _ -> invalid_arg ("Obs.Snapshot.merge: kind mismatch for " ^ name)

  let rec merge a b =
    match (a, b) with
    | [], s | s, [] -> s
    | (na, va) :: ta, (nb, vb) :: tb ->
        if na < nb then (na, va) :: merge ta b
        else if nb < na then (nb, vb) :: merge a tb
        else (na, combine na va vb) :: merge ta tb

  let subtract name a b =
    match (a, b) with
    | Count x, Count y -> Count (x - y)
    | Level x, Level _ -> Level x (* gauges do not subtract; keep [after] *)
    | Seconds x, Seconds y -> Seconds (x -. y)
    | _ -> invalid_arg ("Obs.Snapshot.diff: kind mismatch for " ^ name)

  let rec diff after before =
    match (after, before) with
    | s, [] -> s
    | [], _ -> []
    | (na, va) :: ta, (nb, vb) :: tb ->
        if na < nb then (na, va) :: diff ta before
        else if nb < na then diff after tb
        else (na, subtract na va vb) :: diff ta tb

  let to_list s = s
  let counters s = List.filter_map (function n, Count c -> Some (n, c) | _ -> None) s

  let get_int s name =
    match List.assoc_opt name s with
    | Some (Count c) | Some (Level c) -> c
    | _ -> 0

  let get_float s name =
    match List.assoc_opt name s with Some (Seconds x) -> x | _ -> 0.0

  let pp ppf s =
    List.iter
      (fun (name, v) ->
        match v with
        | Count c -> Format.fprintf ppf "%-32s %12d@." name c
        | Level g -> Format.fprintf ppf "%-32s %12d  (high water)@." name g
        | Seconds t -> Format.fprintf ppf "%-32s %12.6fs@." name t)
      s

  let json_escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let add_json_value buf = function
    | Count c | Level c -> Buffer.add_string buf (string_of_int c)
    | Seconds t -> Buffer.add_string buf (Printf.sprintf "%.9f" t)

  let to_json s =
    let buf = Buffer.create 256 in
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        json_escape buf name;
        Buffer.add_string buf "\":";
        add_json_value buf v)
      s;
    Buffer.add_char buf '}';
    Buffer.contents buf
end

type metric =
  | MCounter of Counter.t
  | MGauge of Gauge.t
  | MTimer of Timer.t

type span = {
  sp_name : string;
  sp_ts : float;
  mutable sp_dur : float; (* negative while open *)
  sp_depth : int;
  sp_args : (string * string) list;
}

module Registry = struct
  type t = {
    metrics : (string, metric) Hashtbl.t;
    mutable span_log : span list; (* completed+open spans, newest first *)
    mutable depth : int;
    record_spans : bool;
  }

  let create ?(record_spans = true) () =
    { metrics = Hashtbl.create 64; span_log = []; depth = 0; record_spans }

  let cell t name make classify err =
    match Hashtbl.find_opt t.metrics name with
    | Some m -> (
        match classify m with
        | Some c -> c
        | None -> invalid_arg ("Obs.Registry: " ^ name ^ " is not a " ^ err))
    | None ->
        let c, m = make () in
        Hashtbl.add t.metrics name m;
        c

  let counter t name =
    cell t name
      (fun () ->
        let c = Counter.{ c = 0 } in
        (c, MCounter c))
      (function MCounter c -> Some c | _ -> None)
      "counter"

  let gauge t name =
    cell t name
      (fun () ->
        let g = Gauge.{ g = 0 } in
        (g, MGauge g))
      (function MGauge g -> Some g | _ -> None)
      "gauge"

  let timer t name =
    cell t name
      (fun () ->
        let tm = Timer.{ s = 0.0 } in
        (tm, MTimer tm))
      (function MTimer tm -> Some tm | _ -> None)
      "timer"

  let snapshot t =
    Hashtbl.fold
      (fun name m acc ->
        let v =
          match m with
          | MCounter c -> Snapshot.Count (Counter.value c)
          | MGauge g -> Snapshot.Level (Gauge.value g)
          | MTimer tm -> Snapshot.Seconds (Timer.value tm)
        in
        (name, v) :: acc)
      t.metrics []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* fold an immutable reading back into live cells: counters and
     timers accumulate, gauges high-water.  Used by the parallel path
     explorer to account accepted per-task registries into the run's
     registry (the dual of [Snapshot.merge] for a mutable target). *)
  let absorb t (s : Snapshot.t) =
    List.iter
      (fun (name, v) ->
        match v with
        | Snapshot.Count c -> Counter.add (counter t name) c
        | Snapshot.Level g -> Gauge.set_max (gauge t name) g
        | Snapshot.Seconds x -> Timer.add (timer t name) x)
      (Snapshot.to_list s)

  let completed_spans t =
    List.rev (List.filter (fun sp -> sp.sp_dur >= 0.0) t.span_log)

  let spans t =
    List.map (fun sp -> (sp.sp_name, sp.sp_dur, sp.sp_depth)) (completed_spans t)
end

module Span = struct
  type t = span

  let enter (reg : Registry.t) ?(args = []) name =
    let sp =
      { sp_name = name; sp_ts = Clock.now (); sp_dur = -1.0; sp_depth = reg.depth; sp_args = args }
    in
    reg.depth <- reg.depth + 1;
    if reg.record_spans then reg.span_log <- sp :: reg.span_log;
    sp

  let exit (reg : Registry.t) sp =
    sp.sp_dur <- Clock.now () -. sp.sp_ts;
    reg.depth <- reg.depth - 1

  let with_ reg ?args name f =
    let sp = enter reg ?args name in
    Fun.protect ~finally:(fun () -> exit reg sp) f
end

module Trace = struct
  let buf_string buf s =
    Buffer.add_char buf '"';
    Snapshot.json_escape buf s;
    Buffer.add_char buf '"'

  let buf_args buf args =
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        buf_string buf k;
        Buffer.add_char buf ':';
        buf_string buf v)
      args;
    Buffer.add_char buf '}'

  let micros t = Printf.sprintf "%.1f" (t *. 1e6)

  (* rebase timestamps to the earliest span so traces open at t=0 *)
  let epoch tracks =
    List.fold_left
      (fun acc (_, reg) ->
        List.fold_left
          (fun acc sp -> min acc sp.sp_ts)
          acc
          (Registry.completed_spans reg))
      infinity tracks
    |> fun t -> if t = infinity then 0.0 else t

  let span_event buf ~t0 ~tid sp =
    Buffer.add_string buf "{\"ph\":\"X\",\"name\":";
    buf_string buf sp.sp_name;
    Buffer.add_string buf ",\"cat\":\"p4testgen\",\"pid\":0,\"tid\":";
    Buffer.add_string buf (string_of_int tid);
    Buffer.add_string buf ",\"ts\":";
    Buffer.add_string buf (micros (sp.sp_ts -. t0));
    Buffer.add_string buf ",\"dur\":";
    Buffer.add_string buf (micros sp.sp_dur);
    if sp.sp_args <> [] then begin
      Buffer.add_string buf ",\"args\":";
      buf_args buf sp.sp_args
    end;
    Buffer.add_char buf '}'

  let counter_event buf ~ts ~tid (name, v) =
    Buffer.add_string buf "{\"ph\":\"C\",\"name\":";
    buf_string buf name;
    Buffer.add_string buf ",\"pid\":0,\"tid\":";
    Buffer.add_string buf (string_of_int tid);
    Buffer.add_string buf ",\"ts\":";
    Buffer.add_string buf (micros ts);
    Buffer.add_string buf ",\"args\":{\"value\":";
    Snapshot.add_json_value buf v;
    Buffer.add_string buf "}}"

  let meta_event buf ~name ~tid label =
    Buffer.add_string buf "{\"ph\":\"M\",\"name\":";
    buf_string buf name;
    Buffer.add_string buf ",\"pid\":0,\"tid\":";
    Buffer.add_string buf (string_of_int tid);
    Buffer.add_string buf ",\"args\":{\"name\":";
    buf_string buf label;
    Buffer.add_string buf "}}"

  (* end of a track's activity, for placing its counter samples *)
  let track_end ~t0 reg =
    List.fold_left
      (fun acc sp -> max acc (sp.sp_ts -. t0 +. sp.sp_dur))
      0.0
      (Registry.completed_spans reg)

  let write_chrome oc tracks =
    let buf = Buffer.create 4096 in
    let t0 = epoch tracks in
    Buffer.add_string buf "{\"traceEvents\":[";
    let first = ref true in
    let emit add =
      if !first then first := false else Buffer.add_string buf ",\n";
      add ()
    in
    emit (fun () -> meta_event buf ~name:"process_name" ~tid:0 "p4testgen");
    List.iteri
      (fun tid (label, reg) ->
        emit (fun () -> meta_event buf ~name:"thread_name" ~tid label);
        List.iter
          (fun sp -> emit (fun () -> span_event buf ~t0 ~tid sp))
          (Registry.completed_spans reg);
        let ts = track_end ~t0 reg in
        List.iter
          (fun entry -> emit (fun () -> counter_event buf ~ts ~tid entry))
          (Registry.snapshot reg))
      tracks;
    Buffer.add_string buf "]}\n";
    Out_channel.output_string oc (Buffer.contents buf)

  let write_jsonl oc tracks =
    let buf = Buffer.create 4096 in
    let t0 = epoch tracks in
    List.iter
      (fun (label, reg) ->
        List.iter
          (fun sp ->
            Buffer.clear buf;
            Buffer.add_string buf "{\"type\":\"span\",\"track\":";
            buf_string buf label;
            Buffer.add_string buf ",\"name\":";
            buf_string buf sp.sp_name;
            Buffer.add_string buf (Printf.sprintf ",\"ts\":%.9f" (sp.sp_ts -. t0));
            Buffer.add_string buf (Printf.sprintf ",\"dur\":%.9f" sp.sp_dur);
            Buffer.add_string buf (Printf.sprintf ",\"depth\":%d" sp.sp_depth);
            if sp.sp_args <> [] then begin
              Buffer.add_string buf ",\"args\":";
              buf_args buf sp.sp_args
            end;
            Buffer.add_string buf "}\n";
            Out_channel.output_string oc (Buffer.contents buf))
          (Registry.completed_spans reg);
        List.iter
          (fun (name, v) ->
            Buffer.clear buf;
            Buffer.add_string buf "{\"type\":\"metric\",\"track\":";
            buf_string buf label;
            Buffer.add_string buf ",\"name\":";
            buf_string buf name;
            Buffer.add_string buf ",\"kind\":";
            buf_string buf
              (match v with
              | Snapshot.Count _ -> "counter"
              | Snapshot.Level _ -> "gauge"
              | Snapshot.Seconds _ -> "timer");
            Buffer.add_string buf ",\"value\":";
            Snapshot.add_json_value buf v;
            Buffer.add_string buf "}\n";
            Out_channel.output_string oc (Buffer.contents buf))
          (Registry.snapshot reg))
      tracks
end
