(** Telemetry for the oracle: named metrics, hierarchical spans, and
    trace export.

    A {!Registry.t} is the unit of observation.  It is owned by one
    domain at a time (like an {!Smt.Expr.ctx}): every run allocates its
    own registry, mutates it without synchronization, and the batch
    driver merges immutable {!Snapshot}s afterwards.  Metric cells are
    interned by name, so hot paths resolve a cell once and then pay a
    single mutable-field update per event.

    This module owns the clock: {!Clock.now} is the only sanctioned
    time source in the tree (no other module calls
    [Unix.gettimeofday]). *)

module Clock : sig
  val now : unit -> float
  (** Seconds since the Unix epoch, from the single process-wide time
      source.  All spans and timers are measured with this function. *)
end

(** {1 Metric cells} *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit

  val set_max : t -> int -> unit
  (** Raises the gauge to [n] if below it (high-water marking). *)

  val value : t -> int
end

module Timer : sig
  type t

  val add : t -> float -> unit
  (** Accumulates [seconds] (negative additions are rejected with
      [Invalid_argument]). *)

  val time : t -> (unit -> 'a) -> 'a
  (** Runs the thunk and accumulates its wall-clock duration, also on
      exception. *)

  val value : t -> float
end

(** {1 Snapshots} *)

module Snapshot : sig
  type value =
    | Count of int  (** counter reading; merges by summing *)
    | Level of int  (** gauge reading; merges by maximum *)
    | Seconds of float  (** timer reading; merges by summing *)

  type t
  (** An immutable reading of a registry: name-sorted metric values. *)

  val empty : t

  val merge : t -> t -> t
  (** Pointwise merge (associative and commutative): counters and
      timers sum, gauges take the maximum.  Raises [Invalid_argument]
      if a name carries different kinds in the two snapshots. *)

  val diff : t -> t -> t
  (** [diff after before]: counters and timers subtract, gauges keep
      the [after] reading.  Names absent from [before] count as zero. *)

  val to_list : t -> (string * value) list
  (** Name-sorted. *)

  val counters : t -> (string * int) list
  (** Only the [Count] entries (deterministic across schedulings,
      unlike timers). *)

  val get_int : t -> string -> int
  (** [Count]/[Level] reading of a name, 0 when absent. *)

  val get_float : t -> string -> float
  (** [Seconds] reading of a name, 0.0 when absent. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable table, one metric per line. *)

  val to_json : t -> string
  (** One JSON object mapping names to numbers. *)
end

(** {1 Registries} *)

module Registry : sig
  type t

  val create : ?record_spans:bool -> unit -> t
  (** A fresh registry.  [record_spans] (default [true]) controls
      whether completed spans are retained for export; metric cells
      are unaffected. *)

  val counter : t -> string -> Counter.t
  val gauge : t -> string -> Gauge.t
  val timer : t -> string -> Timer.t
  (** Intern the named cell, creating it at zero on first use.
      Re-registering a name with a different kind raises
      [Invalid_argument]. *)

  val snapshot : t -> Snapshot.t

  val absorb : t -> Snapshot.t -> unit
  (** Folds a snapshot into the registry's live cells — counters and
      timers accumulate, gauges high-water (the mutable dual of
      {!Snapshot.merge}).  Raises [Invalid_argument] if a name carries
      a different kind in the registry.  The parallel explorer uses
      this to account accepted per-task registries into the run's
      registry so that merged totals are scheduling independent. *)

  val spans : t -> (string * float * int) list
  (** Completed spans, oldest first: (name, duration seconds, nesting
      depth).  Mostly for tests; exporters use {!Trace}. *)
end

(** {1 Spans} *)

module Span : sig
  type t

  val enter : Registry.t -> ?args:(string * string) list -> string -> t
  (** Opens a span at the registry's current nesting depth. *)

  val exit : Registry.t -> t -> unit
  (** Closes the span, stamping its duration. *)

  val with_ :
    Registry.t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [with_ reg name f] runs [f] inside a span, closing it also on
      exception. *)
end

(** {1 Export}

    Each [(label, registry)] pair becomes one track (a Chrome trace
    thread): spans nest by time, metrics appear as counter samples. *)

module Trace : sig
  val write_chrome : out_channel -> (string * Registry.t) list -> unit
  (** Chrome [trace_event] JSON ({{:https://ui.perfetto.dev}Perfetto} /
      [about:tracing] format): one object with a [traceEvents] array;
      timestamps are rebased to the earliest span. *)

  val write_jsonl : out_channel -> (string * Registry.t) list -> unit
  (** One JSON object per line: every completed span, then every
      metric reading. *)
end
